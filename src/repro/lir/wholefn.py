"""Whole-binary codegen: one Python function per compiled binary.

The closure backend (:mod:`repro.lir.closures`) already specializes
each basic block into straight-line Python, but it still pays
Python-level dispatch on every block edge: a driver-loop iteration, a
function call, a return, and three list indexings per block executed.
This module removes that last layer of interpretation.  An entire
:class:`~repro.lir.native.NativeCode` binary is lowered to a *single*
exec-generated Python function:

- **Basic blocks become labeled regions** inside one dispatch-free
  control-flow skeleton.  Natural loops are rebuilt as *nested Python
  ``while`` statements*: every back edge ``continue``s the innermost
  generated loop, so a hot loop header costs a single integer compare
  per iteration instead of a rescan of the whole region chain.  Within
  a loop (and at the top level) regions form an ordered chain of
  ``if _pc == <leader>:`` arms — a forward branch assigns ``_pc`` and
  falls down the chain; leaving a loop falls out of its ``while``
  through a range check.  Straight-line runs that merely *flow into* a
  jump target fall through with a single assignment — no call, no
  driver.  The nesting is a pure optimization: any jump the structure
  does not anticipate cascades out through the range checks and is
  re-dispatched, so irreducible control flow stays correct.

- **Register slots become local variables** (``_r0..`` for the eight
  registers, ``_s0..`` for spill slots — the same physical locations
  :mod:`repro.lir.regalloc` assigned), so operand access compiles to
  ``LOAD_FAST`` instead of a list index.  Immediate-pool operands are
  inlined as source literals, exactly like x86 instruction immediates.

- **Guards compile to inline ``if`` checks** raising the existing
  bailout protocol.  The frame-reconstruction values a snapshot needs
  are spelled out at codegen time as an explicit tuple of locals (and
  literals for immediates), so a bailout never consults a value array
  that no longer exists.

- **Shape-guarded property access compiles to constant-offset slot
  access** — ``obj.slots[2]`` — whenever a dominating ``guardshape``
  proves a single layout offset (:func:`repro.jsvm.objects.common_slot_offset`),
  sharing the tracker with the closure backend.

Cycle and instruction accounting is *region*-granular: the generated
function accumulates the region's precomputed instruction count and
summed static cost in two locals at every region exit, publishing them
through the ``ctx`` list on return.  Exactness under faults is kept by
the same progress-marker scheme the closure backend uses, but cheaper:
``_i`` is re-stamped only before instructions that can actually raise
(guards, heap access, calls), so pure arithmetic runs marker-free.  On
any exception the function publishes ``(_pc, _i, _a)`` and the
driver charges exactly through the faulting instruction — the same
cycles, the same ``Bailout.native_index``, bit-identical to both other
backends (the differential suites prove stats, cycles, output and
trace streams match on every suite benchmark).

The generated module round-trips through the persistent code cache
under the closure backend's byte-exact trust rule: the stored marshal
blob is only used when the source generated *now* matches the stored
source byte for byte (:func:`whole_artifact`).
"""

import marshal

from repro.errors import CompilerError
from repro.jsvm import operations
from repro.jsvm.bytecode import Op
from repro.jsvm.interpreter import MAX_CALL_DEPTH
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import (
    UNDEFINED,
    JSFunction,
    NativeFunction,
    normalize_number,
    to_boolean,
    type_of,
)
from repro.lir.closures import (
    _COMPARE_PY,
    _Binder,
    _ShapeGuardTracker,
    _TERMINATORS,
    CTX_OSR_ARGS,
    CTX_OSR_LOCALS,
    CTX_RESULT,
    CTX_FAULT,
)
from repro.lir.executor import (
    Bailout,
    NativeExecutor,
    _compare,
    _matches,
    forced_recovery_value,
)
from repro.lir.native import FAULT_INJECTED, GUARD_OPS
from repro.lir.regalloc import NUM_REGS
from repro.mir.types import MIRType

#: Extra ``ctx`` slots beyond the closure backend's seven: the packed
#: cycle/instruction accumulator and the faulting region's leader pc.
#: The whole function has no per-block driver, so these are the only
#: channel from generated code back to the executor.
CTX_ACC = 7
CTX_PC = 8

#: Region accounting is packed into ONE accumulator: every region exit
#: executes a single ``_a += K`` with the precomputed literal
#: ``K = (static_cycles << _ACC_SHIFT) | instruction_count``.  Python
#: ints are unbounded so the high field cannot overflow, and the low
#: field cannot carry into it before ~2**64 executed instructions —
#: far beyond any run.  The executor splits the two fields at the end.
_ACC_SHIFT = 64
_ACC_MASK = (1 << _ACC_SHIFT) - 1

#: Ops whose generated statements can raise *outside the generated
#: code's own control* — guest errors out of calls, generic operators
#: and runtime helpers.  Only these need a hot-path ``_i`` progress
#: marker.  Guards raise too, but only through their own explicit
#: ``_bw``/``_fw`` cold branch, so their marker is emitted *inside*
#: that branch and the speculation-holds path runs marker-free.
#: Everything else (moves, checked arithmetic whose guard passed,
#: bounds-checked heap access, comparisons, allocation) is total by
#: construction.
_HELPER_RAISES = frozenset(
    [
        "osrvalue",
        "getelem_v",
        "setelem_v",
        "getprop_v",
        "setprop_v",
        "loadglobal",
        "storeglobal",
        "binary_v",
        "unary_v",
        "call",
        "new",
    ]
)


#: Int32-closed bitwise operators inlined as host operators (see the
#: ``bitop_i`` emission for the shift family, which needs masking).
_BITOP_PY = {Op.BITAND: "&", Op.BITOR: "|", Op.BITXOR: "^"}

#: Generic ``binary_v`` operators with an inlineable both-numbers fast
#: path.  ADD/SUB normalize like the typed double ops; the relational
#: and equality operators map onto the host operator directly (for two
#: numbers ``js_compare``/``js_equals``/``js_strict_equals`` all reduce
#: to an exact host comparison, NaN included).  MUL is excluded: its
#: int×int negative-zero rule needs the helper.
_GENERIC_NUMERIC_PY = {
    Op.ADD: "+",
    Op.SUB: "-",
    Op.LT: "<",
    Op.LE: "<=",
    Op.GT: ">",
    Op.GE: ">=",
    Op.EQ: "==",
    Op.NE: "!=",
    Op.STRICTEQ: "==",
    Op.STRICTNE: "!=",
}

#: Longest run of chain items emitted linearly before switching to a
#: binary dispatch tree (see :meth:`_WholeEmitter._emit_items`).
_LINEAR_LIMIT = 8

#: Deepest ``while`` nesting the loop tree may materialize.  CPython's
#: compiler refuses functions with more than 20 statically nested
#: blocks (``CO_MAXBLOCKS``), and the generated function already
#: spends two on its ``try`` and redispatch loop.  Loops past the cap
#: are emitted as flat region arms: their back edges ``continue`` the
#: nearest materialized enclosing loop and re-dispatch from there —
#: the nesting is a pure optimization, so only speed is lost.
_MAX_LOOP_DEPTH = 14




def publish_bailout(snapshot, vals, reason, op, actual=None):
    """Raise the :class:`Bailout` for a guard with pre-read values.

    The whole-function backend keeps values in Python locals, so the
    generated guard passes the snapshot's reconstruction values as an
    explicit tuple (in ``snapshot.locations`` order) instead of handing
    over a value array.  Frame slicing matches
    :meth:`NativeExecutor._bail` exactly.
    """
    num_args = snapshot.num_args
    num_locals = snapshot.num_locals
    args = list(vals[:num_args])
    locals_ = list(vals[num_args : num_args + num_locals])
    stack = list(vals[num_args + num_locals :])
    if snapshot.mode == "after":
        stack.append(actual)
    raise Bailout(
        snapshot, args, locals_, stack, snapshot.pc, snapshot.mode, reason, op, actual
    )


def _region_labels(native):
    """Leaders that start an addressable region: the entry, the OSR
    entry, and every jump target.  This is exactly the reachable subset
    of the closure backend's block partition — a post-terminator block
    that is not a jump target can never execute — so per-region
    accounting lands on the same leaders as per-block accounting.
    """
    labels = {native.entry_index}
    if native.osr_index is not None:
        labels.add(native.osr_index)
    for instruction in native.instructions:
        if instruction.targets is not None:
            labels.update(instruction.targets)
    return sorted(
        label for label in labels if 0 <= label < len(native.instructions)
    )


class _WholeEmitter(object):
    """Generates the single-function module for one binary."""

    def __init__(self, native, executor, profiled=False):
        self.native = native
        self.executor = executor
        self.profiled = profiled
        self.inject = executor.fault_injector is not None
        self.namespace = {
            "_UNDEF": UNDEFINED,
            "_bw": publish_bailout,
            "_interp": executor.interpreter,
            "_runtime": executor.runtime,
            "_normalize": normalize_number,
            "_js_div": operations.js_div,
            "_js_mod": operations.js_mod,
            "_binary": operations.binary_op,
            "_unary": operations.unary_op,
            "_to_int32": operations.to_int32,
            "_to_boolean": to_boolean,
            "_type_of": type_of,
            "_cmp": _compare,
            "_matches": _matches,
            "_get_element": operations.get_element,
            "_set_element": operations.set_element,
            "_get_property": executor.interpreter.get_property,
            "_set_property": operations.set_property,
            "_get_global": executor.runtime.get_global,
            "_set_global": executor.runtime.set_global,
            "_call_value": executor.interpreter.call_value,
            "_call_function": executor.interpreter.call_function,
            "_construct": executor.interpreter.construct,
            "_JSArray": JSArray,
            "_JSObject": JSObject,
            "_JSFunction": JSFunction,
            "_FUNCS": (JSFunction, NativeFunction),
            "_badpc": _bad_pc,
        }
        if self.inject:
            injector = executor.fault_injector
            instructions = native.instructions

            def _fire(index, _injector=injector, _native=native):
                return _injector.should_fire(_native, index)

            def _fw(index, srcvals, snapvals, _instructions=instructions):
                instruction = _instructions[index]
                actual = forced_recovery_value(
                    instruction.op, instruction.extra, srcvals
                )
                publish_bailout(
                    instruction.snapshot, snapvals, FAULT_INJECTED, instruction.op, actual
                )

            self.namespace["_fire"] = _fire
            self.namespace["_fw"] = _fw
        self.binder = _Binder(self.namespace)
        # Per-region emission state.
        self.cur_offset = 0
        self.args_in_t = False
        self.known_i = None
        self.bool_locs = set()

    # -- operand text --------------------------------------------------------

    def val(self, loc):
        """Source text reading physical location ``loc``."""
        if loc < 0:
            return self.binder.lit(self.native.immediates[loc])
        if loc < NUM_REGS:
            return "_r%d" % loc
        return "_s%d" % (loc - NUM_REGS)

    def snap_vals(self, snapshot):
        """Tuple-display text of the snapshot's located values."""
        parts = "".join(self.val(loc) + ", " for loc in snapshot.locations)
        return "(%s)" % parts

    def src_vals(self, instruction):
        """Tuple-display text of the instruction's source values."""
        parts = "".join(self.val(loc) + ", " for loc in instruction.srcs)
        return "(%s)" % parts

    # -- instruction emission ------------------------------------------------

    def emit_instruction(self, out, index, offset, instruction, slot_offset):
        """Append statements for one instruction of a region body.

        ``offset`` is the in-region offset used for the progress
        marker.  Hot-path markers are emitted lazily, and only before
        instructions that can raise out of a runtime helper
        (``_HELPER_RAISES``); guards stamp their marker inside their
        own cold bail branch instead (:meth:`_bail`), so passing
        speculation costs nothing.
        """
        self.cur_offset = offset
        if instruction.op != "getarg":
            self.args_in_t = False
        if instruction.op in _HELPER_RAISES:
            if self.known_i != offset:
                out.append("_i = %d" % offset)
                self.known_i = offset
        if (
            self.inject
            and instruction.snapshot is not None
            and instruction.op in GUARD_OPS
        ):
            out.append("if _fire(%d):" % index)
            if self.known_i != offset:
                out.append("    _i = %d" % offset)
            out.append(
                "    _fw(%d, %s, %s)"
                % (
                    index,
                    self.src_vals(instruction),
                    self.snap_vals(instruction.snapshot),
                )
            )
        self._emit_op(out, instruction, slot_offset)
        dest = instruction.dest
        if dest is not None and dest >= 0:
            if self._produces_bool(instruction):
                self.bool_locs.add(dest)
            else:
                self.bool_locs.discard(dest)

    def _produces_bool(self, instruction):
        """True when ``instruction``'s destination provably holds a
        Python bool, letting a later ``test`` compile to a bare ``if``."""
        op = instruction.op
        if op == "compare" or op == "not":
            return True
        if op in ("unbox", "typebarrier"):
            return instruction.extra == MIRType.BOOLEAN
        if op == "const":
            return instruction.extra is True or instruction.extra is False
        if op == "move":
            return instruction.srcs[0] in self.bool_locs
        return False

    def _bail(self, out, instruction, reason, actual="None"):
        """Append the cold bail-branch body for a failed guard: stamp
        the progress marker (elided from the hot path) and raise
        through ``_bw``."""
        if self.known_i != self.cur_offset:
            out.append("    _i = %d" % self.cur_offset)
        out.append("    " + self._bail_call(instruction, reason, actual))

    def _bail_call(self, instruction, reason, actual="None"):
        snap = instruction.snapshot
        return "_bw(%s, %s, %r, %r, %s)" % (
            self.binder.bind(snap),
            self.snap_vals(snap),
            reason,
            instruction.op,
            actual,
        )

    def _emit_op(self, out, instruction, slot_offset):
        op = instruction.op
        srcs = instruction.srcs
        extra = instruction.extra
        snap = instruction.snapshot
        binder = self.binder
        v = self.val
        d = lambda: self.val(instruction.dest)

        if op == "move":
            out.append("%s = %s" % (d(), v(srcs[0])))
        elif op == "const":
            out.append("%s = %s" % (d(), binder.lit(extra)))
        elif op == "getarg":
            if extra == -1:
                out.append("%s = _c[0]" % d())
            else:
                # Consecutive argument loads (the entry prologue)
                # share one read of the argument list into ``_t``.
                if not self.args_in_t:
                    out.append("_t = _c[1]")
                    self.args_in_t = True
                out.append(
                    "%s = _t[%d] if %d < len(_t) else _UNDEF" % (d(), extra, extra)
                )
        elif op == "osrvalue":
            kind, arg_index = extra
            slot = CTX_OSR_ARGS if kind == "arg" else CTX_OSR_LOCALS
            out.append("%s = _c[%d][%d]" % (d(), slot, arg_index))
        elif op == "self":
            out.append("%s = _c[2]" % d())
        elif op in ("add_i", "sub_i"):
            sign = "+" if op == "add_i" else "-"
            if snap is None:
                out.append("%s = %s %s %s" % (d(), v(srcs[0]), sign, v(srcs[1])))
            else:
                out.append("_t = %s %s %s" % (v(srcs[0]), sign, v(srcs[1])))
                out.append("if _t > 2147483647 or _t < -2147483648:")
                self._bail(out, instruction, "overflow", "float(_t)")
                out.append("%s = _t" % d())
        elif op == "mul_i":
            if snap is None:
                out.append("%s = %s * %s" % (d(), v(srcs[0]), v(srcs[1])))
            else:
                out.append("_x = %s" % v(srcs[0]))
                out.append("_y = %s" % v(srcs[1]))
                out.append("_t = _x * _y")
                out.append("if _t > 2147483647 or _t < -2147483648:")
                self._bail(out, instruction, "overflow", "float(_t)")
                out.append("if _t == 0 and (_x < 0 or _y < 0):")
                self._bail(out, instruction, "negative zero", "-0.0")
                out.append("%s = _t" % d())
        elif op == "neg_i":
            if snap is None:
                out.append("%s = -%s" % (d(), v(srcs[0])))
            else:
                out.append("_t = %s" % v(srcs[0]))
                out.append("if _t == 0:")
                self._bail(out, instruction, "negative zero", "-0.0")
                out.append("if _t == -2147483648:")
                self._bail(out, instruction, "overflow", "-float(_t)")
                out.append("%s = -_t" % d())
        elif op in ("add_d", "sub_d", "mul_d"):
            # ``_t % 1`` is truthy exactly when the result is a
            # non-integral float, NaN or an infinity — every value
            # ``normalize_number`` returns unchanged — so the common
            # double result skips the helper call.  Integral results
            # (and int operands) still go through ``_normalize`` for
            # the int32/-0.0 canonicalization.
            sign = {"add_d": "+", "sub_d": "-", "mul_d": "*"}[op]
            out.append("_t = %s %s %s" % (v(srcs[0]), sign, v(srcs[1])))
            out.append("%s = _t if _t %% 1 else _normalize(_t)" % d())
        elif op == "div_d":
            out.append("%s = _js_div(%s, %s)" % (d(), v(srcs[0]), v(srcs[1])))
        elif op == "mod_d":
            out.append("%s = _js_mod(%s, %s)" % (d(), v(srcs[0]), v(srcs[1])))
        elif op == "neg_d":
            out.append("%s = -%s" % (d(), v(srcs[0])))
        elif op == "bitop_i":
            # Operands are INT32-typed, so ``ToInt32`` is the identity
            # and the generic ``binary_op`` dispatch compiles away to
            # the host integer operator.  Only ``>>>`` can leave int32
            # (its result is uint32); every other operator closes over
            # int32, so its "uint32 overflow" guard can never fire and
            # is omitted — exactly the check ``type(result) is int``
            # the other backends evaluate to true.
            if extra == Op.SHL:
                out.append("_t = (%s << (%s & 31)) & 4294967295" % (v(srcs[0]), v(srcs[1])))
                out.append("%s = _t - 4294967296 if _t >= 2147483648 else _t" % d())
            elif extra == Op.SHR:
                out.append("%s = %s >> (%s & 31)" % (d(), v(srcs[0]), v(srcs[1])))
            elif extra == Op.USHR:
                out.append(
                    "_t = (%s & 4294967295) >> (%s & 31)" % (v(srcs[0]), v(srcs[1]))
                )
                if snap is None:
                    out.append("%s = float(_t) if _t > 2147483647 else _t" % d())
                else:
                    out.append("if _t > 2147483647:")
                    self._bail(out, instruction, "uint32 overflow", "float(_t)")
                    out.append("%s = _t" % d())
            elif extra in _BITOP_PY:
                out.append(
                    "%s = %s %s %s" % (d(), v(srcs[0]), _BITOP_PY[extra], v(srcs[1]))
                )
            else:
                raise CompilerError("whole backend: unknown bitop %r" % (extra,))
        elif op == "toint32":
            # INT32-range ints pass through ``ToInt32`` unchanged; only
            # doubles (and exotic inputs) need the helper.
            out.append("_t = %s" % v(srcs[0]))
            out.append("%s = _t if type(_t) is int else _to_int32(_t)" % d())
        elif op == "todouble":
            out.append("%s = float(%s)" % (d(), v(srcs[0])))
        elif op == "concat":
            out.append("%s = %s + %s" % (d(), v(srcs[0]), v(srcs[1])))
        elif op == "compare":
            cmp_op, kind = extra
            py = _COMPARE_PY.get(cmp_op)
            if py is not None:
                out.append("%s = %s %s %s" % (d(), v(srcs[0]), py, v(srcs[1])))
            else:
                out.append(
                    "%s = _cmp(%s, %s, %s, %s)"
                    % (d(), binder.lit(cmp_op), binder.lit(kind), v(srcs[0]), v(srcs[1]))
                )
        elif op == "binary_v":
            # Generic binary sites still dominate unspecialized code;
            # inline the numeric fast path (exactly the expression
            # ``binary_op`` would evaluate for two numbers) and keep
            # the helper call as the slow-path fallback.  Equality is
            # inlined only when *both* operands are numbers — the
            # abstract-equality coercion ladder stays in the helper.
            py = _GENERIC_NUMERIC_PY.get(extra)
            a, b = v(srcs[0]), v(srcs[1])
            if py is not None:
                out.append("_t = type(%s)" % a)
                out.append("_x = type(%s)" % b)
                out.append(
                    "if (_t is int or _t is float) and (_x is int or _x is float):"
                )
                if extra in (Op.ADD, Op.SUB):
                    # Same normalization trick as add_d/sub_d: a
                    # non-integral float result passes through
                    # normalize_number unchanged, so only integral
                    # results (int32 demotion, -0.0) pay the helper.
                    out.append("    _t = %s %s %s" % (a, py, b))
                    out.append("    %s = _t if _t %% 1 else _normalize(_t)" % d())
                else:
                    # Relational/equality on numbers is the host
                    # operator verbatim (NaN comparisons are False in
                    # both languages; int/float mixes compare exactly).
                    out.append("    %s = %s %s %s" % (d(), a, py, b))
                out.append("else:")
                out.append(
                    "    %s = _binary(%s, %s, %s)" % (d(), binder.lit(extra), a, b)
                )
            else:
                out.append(
                    "%s = _binary(%s, %s, %s)" % (d(), binder.lit(extra), a, b)
                )
        elif op == "unary_v":
            out.append("%s = _unary(%s, %s)" % (d(), binder.lit(extra), v(srcs[0])))
        elif op == "not":
            out.append("%s = not _to_boolean(%s)" % (d(), v(srcs[0])))
        elif op == "typeof":
            out.append("%s = _type_of(%s)" % (d(), v(srcs[0])))
        elif op == "unbox":
            out.append("_t = %s" % v(srcs[0]))
            if extra == MIRType.DOUBLE:
                out.append("_x = type(_t)")
                out.append("if _x is not float and _x is not int:")
                self._bail(out, instruction, "type guard", "_t")
                out.append("%s = float(_t) if _x is int else _t" % d())
            else:
                self._emit_type_check(out, extra, instruction, "type guard")
                out.append("%s = _t" % d())
        elif op == "typebarrier":
            out.append("_t = %s" % v(srcs[0]))
            if extra != MIRType.VALUE:
                self._emit_type_check(out, extra, instruction, "type barrier")
            out.append("%s = _t" % d())
        elif op == "checkoverrecursed":
            out.append("if _interp.call_depth >= %d:" % MAX_CALL_DEPTH)
            self._bail(out, instruction, "over-recursed")
        elif op == "arraylength":
            out.append("%s = len(%s.elements)" % (d(), v(srcs[0])))
        elif op == "stringlength":
            out.append("%s = len(%s)" % (d(), v(srcs[0])))
        elif op == "boundscheck":
            out.append("if %s < 0 or %s >= %s:" % (v(srcs[0]), v(srcs[0]), v(srcs[1])))
            self._bail(out, instruction, "bounds check")
        elif op == "guardshape":
            out.append(
                "if %s.shape.shape_id not in %s:" % (v(srcs[0]), binder.lit(extra))
            )
            # Observed shape id as the bailout ``actual`` (engine-side
            # retrain-noop detection; never pushed by "at"-mode resume).
            self._bail(
                out, instruction, "shape guard", "%s.shape.shape_id" % v(srcs[0])
            )
        elif op == "loadelement":
            out.append("%s = %s.elements[%s]" % (d(), v(srcs[0]), v(srcs[1])))
        elif op == "storeelement":
            out.append("%s.elements[%s] = %s" % (v(srcs[0]), v(srcs[1]), v(srcs[2])))
        elif op == "getelem_v":
            # Inline the dense-array read ``get_element`` would take
            # for an in-range int index; everything else (doubles,
            # strings, objects, out-of-range) falls to the helper.
            a, b = v(srcs[0]), v(srcs[1])
            out.append(
                "if type(%s) is _JSArray and type(%s) is int and 0 <= %s < len(%s.elements):"
                % (a, b, b, a)
            )
            out.append("    %s = %s.elements[%s]" % (d(), a, b))
            out.append("else:")
            out.append("    %s = _get_element(%s, %s, _runtime)" % (d(), a, b))
        elif op == "setelem_v":
            a, b, c = v(srcs[0]), v(srcs[1]), v(srcs[2])
            out.append(
                "if type(%s) is _JSArray and type(%s) is int and 0 <= %s < len(%s.elements):"
                % (a, b, b, a)
            )
            out.append("    %s.elements[%s] = %s" % (a, b, c))
            out.append("else:")
            out.append("    _set_element(%s, %s, %s)" % (a, b, c))
        elif op == "loadprop":
            if slot_offset is not None:
                out.append("%s = %s.slots[%d]" % (d(), v(srcs[0]), slot_offset))
            else:
                out.append("%s = %s.get(%s)" % (d(), v(srcs[0]), binder.lit(extra)))
        elif op == "storeprop":
            if slot_offset is not None:
                out.append("%s.slots[%d] = %s" % (v(srcs[0]), slot_offset, v(srcs[1])))
            else:
                out.append("%s.set(%s, %s)" % (v(srcs[0]), binder.lit(extra), v(srcs[1])))
        elif op == "getprop_v":
            # A plain object (exact type: arrays and functions fall to
            # the helper) reads straight off its shape, skipping the
            # interpreter's receiver dispatch.
            a, name = v(srcs[0]), binder.lit(extra)
            out.append(
                "%s = %s.get(%s) if type(%s) is _JSObject else _get_property(%s, %s)"
                % (d(), a, name, a, a, name)
            )
        elif op == "setprop_v":
            a, name, value = v(srcs[0]), binder.lit(extra), v(srcs[1])
            out.append("if type(%s) is _JSObject:" % a)
            out.append("    %s.set(%s, %s)" % (a, name, value))
            out.append("else:")
            out.append("    _set_property(%s, %s, %s)" % (a, name, value))
        elif op == "loadglobal":
            out.append("%s = _get_global(%s)" % (d(), binder.lit(extra)))
        elif op == "storeglobal":
            out.append("_set_global(%s, %s)" % (binder.lit(extra), v(srcs[0])))
        elif op == "newarray":
            out.append("%s = _JSArray([%s])" % (d(), ", ".join(v(loc) for loc in srcs)))
        elif op == "newobject":
            out.append("_t = _JSObject()")
            for key, loc in zip(extra, srcs):
                out.append("_t.set(%s, %s)" % (binder.lit(key), v(loc)))
            out.append("%s = _t" % d())
        elif op == "lambda":
            out.append("%s = _JSFunction(%s, ())" % (d(), binder.bind(extra)))
        elif op == "call":
            # Calling a guest function is by far the common case:
            # dispatch straight to call_function (what call_value does
            # after its two isinstance checks) and keep call_value for
            # native functions and the not-callable error.
            callee = v(srcs[0])
            this = v(srcs[1])
            arg_list = ", ".join(v(loc) for loc in srcs[2:])
            out.append("_t = %s" % callee)
            out.append(
                "%s = _call_function(_t, %s, [%s]) if type(_t) is _JSFunction "
                "else _call_value(_t, %s, [%s])" % (d(), this, arg_list, this, arg_list)
            )
        elif op == "new":
            out.append(
                "%s = _construct(%s, [%s])"
                % (d(), v(srcs[0]), ", ".join(v(loc) for loc in srcs[1:]))
            )
        elif op in _TERMINATORS:
            raise CompilerError("whole backend: terminator %r in region body" % op)
        else:
            raise CompilerError("whole backend: unknown op %r" % op)

    def _emit_type_check(self, out, expected, instruction, reason):
        if expected == MIRType.INT32:
            out.append("if type(_t) is not int:")
        elif expected == MIRType.BOOLEAN:
            out.append("if type(_t) is not bool:")
        elif expected == MIRType.STRING:
            out.append("if type(_t) is not str:")
        elif expected == MIRType.DOUBLE:
            out.append("if type(_t) is not float and type(_t) is not int:")
        elif expected == MIRType.FUNCTION:
            out.append("if not isinstance(_t, _FUNCS):")
        elif expected == MIRType.ARRAY:
            out.append("if not isinstance(_t, _JSArray):")
        elif expected == MIRType.OBJECT:
            out.append("if not isinstance(_t, _JSObject) or isinstance(_t, _JSArray):")
        else:
            out.append("if not _matches(_t, %s):" % self.binder.bind(expected))
        self._bail(out, instruction, reason, "_t")

    # -- region and skeleton emission ----------------------------------------

    def _init_locations(self, labels, bodies):
        """Locations that must be pre-set to undefined on entry.

        The other backends allocate a value array initialized to
        undefined, so any location can be read (a snapshot naming a
        not-yet-assigned guest local, a merge where only one branch
        writes).  Materializing that as a per-call assignment chain over
        *every* read location would tax small hot functions, so a
        definitely-assigned forward dataflow over the region graph
        prunes it: a location needs the ``_UNDEF`` init only if some
        region can read it (as a source or a snapshot reconstruction
        value) without every path from an entry having written it
        first.  Reads of immediates are literals and never counted.
        """
        instructions = self.native.instructions
        native = self.native
        label_set = set(labels)
        exposed = {}
        writes = {}
        successors = {}
        for label in labels:
            body = bodies[label]
            written = set()
            naked = set()
            for index in body:
                instruction = instructions[index]
                for loc in instruction.srcs:
                    if loc >= 0 and loc not in written:
                        naked.add(loc)
                if instruction.snapshot is not None:
                    for loc in instruction.snapshot.locations:
                        if loc >= 0 and loc not in written:
                            naked.add(loc)
                dest = instruction.dest
                if dest is not None and dest >= 0:
                    written.add(dest)
            exposed[label] = naked
            writes[label] = written
            terminator = instructions[body[-1]]
            if terminator.op in _TERMINATORS:
                targets = terminator.targets
                successors[label] = list(targets) if targets is not None else []
            else:
                fall = body[-1] + 1
                successors[label] = [fall] if fall in label_set else []

        # Definitely-assigned-on-entry per region: intersection over
        # predecessors, empty at the function entries.
        assigned = {native.entry_index: set()}
        if native.osr_index is not None:
            assigned[native.osr_index] = set()
        changed = True
        while changed:
            changed = False
            for label in labels:
                if label not in assigned:
                    continue
                flowing = assigned[label] | writes[label]
                for target in successors[label]:
                    known = assigned.get(target)
                    if known is None:
                        assigned[target] = set(flowing)
                        changed = True
                    elif not known <= flowing:
                        known &= flowing
                        changed = True

        needs = set()
        for label in labels:
            known = assigned.get(label)
            if known is None:
                needs |= exposed[label]
            else:
                needs |= exposed[label] - known
        return sorted(needs)

    def _trampolines(self, labels, bodies):
        """Map of *trivial* regions: pure move runs ending in a jump.

        The lowering splits critical edges into tiny phi-resolution
        regions — a few register moves and a ``goto`` (or ``return``)
        — and places them at the *bottom* of the binary.  Dispatching
        to them is pure overhead, and worse, it makes every back edge
        look like it originates at the end of the instruction stream,
        fusing all loop intervals into one giant nest.  These regions
        are instead inlined at their jump sites (they cannot fault, so
        charging their region constant at the splice point is exact),
        and the loop tree is computed over the *effective* edges.
        Chaos-instrumented translations skip the whole scheme: the
        injector addresses trampoline instructions by index, so they
        must stay dispatchable.
        """
        instructions = self.native.instructions
        trivial = {}
        if self.inject:
            return trivial
        for label in labels:
            body = bodies[label]
            if any(instructions[i].op != "move" for i in body[:-1]):
                continue
            terminator = instructions[body[-1]]
            if terminator.op == "goto":
                trivial[label] = ("goto", terminator.targets[0])
            elif terminator.op == "return":
                trivial[label] = ("return", terminator.srcs[0])
        return trivial

    def _resolve_target(self, target):
        """Resolve a jump target through trivial regions.

        Returns ``(splice, final, ret_src)``: the trivial region labels
        to inline at the jump site (in execution order), then either
        the label to dispatch to (``ret_src`` None) or the location to
        return (``final`` None).  A cyclic trampoline chain (an empty
        guest infinite loop) stops at the first revisited label, which
        stays dispatchable.
        """
        cached = self._res_cache.get(target)
        if cached is not None:
            return cached
        splice = []
        seen = set()
        cur = target
        result = None
        while True:
            kind_target = self.trivial.get(cur)
            if kind_target is None:
                result = (tuple(splice), cur, None)
                break
            if cur in seen:
                if cur in splice:
                    splice = splice[: splice.index(cur)]
                result = (tuple(splice), cur, None)
                break
            seen.add(cur)
            splice.append(cur)
            kind, where = kind_target
            if kind == "return":
                result = (tuple(splice), None, where)
                break
            cur = where
        self._res_cache[target] = result
        return result

    def _loop_tree(self, labels, bodies):
        """Group the region sequence into a tree of natural loops.

        A back edge from region ``L`` to target ``T <= L`` makes ``T``
        a loop header whose interval spans the labels ``[T, max L]``.
        Edges are the *effective* ones — jump targets resolved through
        inlined trampolines, including the fallthrough into a
        trampoline — so phi-resolution regions at the bottom of the
        binary do not stretch every interval.  Crossing intervals
        (irreducible flow) are merged by extension until the set
        nests, then the label sequence is folded into items:
        ``("region", label)`` or ``("loop", header, end, sub)``.
        """
        instructions = self.native.instructions
        size = len(instructions)
        label_set = set(labels)
        intervals = {}
        for label in labels:
            terminator = instructions[bodies[label][-1]]
            targets = terminator.targets
            if targets is None:
                if terminator.op in _TERMINATORS:
                    continue
                fall = bodies[label][-1] + 1
                if fall >= size or fall not in self._all_labels:
                    continue
                targets = [fall]
            for target in targets:
                _splice, final, _ret = self._resolve_target(target)
                if final is None:
                    continue
                if final <= label:
                    end = intervals.get(final)
                    if end is None or label > end:
                        intervals[final] = label
        changed = True
        while changed:
            changed = False
            headers = sorted(intervals)
            for position, header in enumerate(headers):
                for other in headers[position + 1 :]:
                    if other <= intervals[header] < intervals[other]:
                        intervals[header] = intervals[other]
                        changed = True
        return self._fold_items(labels, intervals, frozenset(), 1)

    def _fold_items(self, labels, intervals, open_headers, depth):
        items = []
        position = 0
        total = len(labels)
        while position < total:
            label = labels[position]
            if (
                label in intervals
                and label not in open_headers
                and depth < _MAX_LOOP_DEPTH
            ):
                end = intervals[label]
                stop = position
                while stop < total and labels[stop] <= end:
                    stop += 1
                sub = self._fold_items(
                    labels[position:stop], intervals, open_headers | {label}, depth + 1
                )
                items.append(("loop", label, end, sub))
                position = stop
            else:
                items.append(("region", label))
                position += 1
        return items

    def _emit_items(self, items, bodies, counts, sums, out):
        """Chain arms for a (sub)sequence of regions and nested loops.

        Short sequences emit as a linear chain — consecutive regions
        fall from arm to arm with one integer compare each, which is
        the straight-line hot path.  Long sequences (big functions can
        have hundreds of regions) are split into a binary dispatch tree
        so a redispatch costs O(log n) compares instead of a linear
        scan; control that falls across a split boundary cascades to
        the enclosing redispatch point (loop bottom or skeleton top)
        and descends the tree again.
        """
        if len(items) > _LINEAR_LIMIT:
            mid = len(items) // 2
            out.append("if _pc < %d:" % items[mid][1])
            left = []
            self._emit_items(items[:mid], bodies, counts, sums, left)
            out.extend("    " + line for line in left)
            out.append("else:")
            right = []
            self._emit_items(items[mid:], bodies, counts, sums, right)
            out.extend("    " + line for line in right)
            return
        for item in items:
            if item[0] == "region":
                label = item[1]
                out.append("if _pc == %d:" % label)
                region = self._emit_region(label, bodies[label], counts, sums)
                out.extend("    " + line for line in region)
            else:
                _, header, end, sub_items = item
                out.append("if %d <= _pc <= %d:" % (header, end))
                out.append("    while True:")
                sub = []
                self._emit_items(sub_items, bodies, counts, sums, sub)
                # Falling past every arm means a jump left this loop
                # (break out to the enclosing chain) — unless a nested
                # break cascaded up with the header as target, in which
                # case re-enter.  Back edges never reach here: they
                # ``continue`` directly at the jump site.
                sub.append("if %d <= _pc <= %d:" % (header, end))
                sub.append("    continue")
                sub.append("break")
                out.extend("        " + line for line in sub)

    def generate(self):
        """Build the module source; returns ``(source, counts, sums, prefix)``."""
        native = self.native
        instructions = native.instructions
        costs = native.cost_table(self.executor.cost_model)
        size = len(instructions)

        labels = _region_labels(native)
        label_set = set(labels)
        bodies = {}
        for label in labels:
            body = []
            index = label
            while True:
                body.append(index)
                if instructions[index].op in _TERMINATORS:
                    break
                if index + 1 >= size or index + 1 in label_set:
                    break
                index += 1
            bodies[label] = body

        counts = [0] * size
        sums = [0] * size
        prefix = [None] * size
        for label, body in bodies.items():
            counts[label] = len(body)
            running = 0
            region_prefix = []
            for index in body:
                running += costs[index]
                region_prefix.append(running)
            sums[label] = running
            prefix[label] = region_prefix

        self.bodies = bodies
        self.counts = counts
        self.sums = sums
        self._all_labels = label_set
        self.trivial = self._trampolines(labels, bodies)
        self._res_cache = {}
        # Trampolines are inlined at every jump to them, so they leave
        # the dispatch chain — except the entries (dispatched by pc at
        # call time) and any cycle-stopping label a resolution targets.
        kept = set(label for label in labels if label not in self.trivial)
        kept.add(native.entry_index)
        if native.osr_index is not None:
            kept.add(native.osr_index)
        for label in labels:
            _splice, final, _ret = self._resolve_target(label)
            if final is not None:
                kept.add(final)
        chain_labels = [label for label in labels if label in kept]

        lines = ["def _w(_c, _pc):"]
        reads = self._init_locations(labels, bodies)
        for start in range(0, len(reads), 12):
            chunk = reads[start : start + 12]
            lines.append(
                "    %s = _UNDEF" % " = ".join(self.val(loc) for loc in chunk)
            )
        lines.append("    _a = 0")
        lines.append("    _i = 0")
        lines.append("    try:")
        lines.append("        while True:")
        chain = []
        self._emit_items(
            self._loop_tree(chain_labels, bodies), bodies, counts, sums, chain
        )
        lines.extend("            " + line for line in chain)
        # Falling past every arm is either a redispatch (control
        # crossed a split or loop boundary; rescan from the top) or a
        # fall off the end of the instruction stream (malformed
        # binary).
        lines.append("            if _pc < %d:" % size)
        lines.append("                continue")
        lines.append("            raise _badpc(_pc)")
        lines.append("    except BaseException:")
        lines.append("        _c[%d] = _i" % CTX_FAULT)
        lines.append("        _c[%d] = _a" % CTX_ACC)
        lines.append("        _c[%d] = _pc" % CTX_PC)
        lines.append("        raise")
        return "\n".join(lines), counts, sums, prefix

    def _emit_region(self, label, body, counts, sums):
        """Statements for one region (indented relative to its arm)."""
        instructions = self.native.instructions
        out = []
        self.known_i = None
        self.args_in_t = False
        self.bool_locs = set()
        shape_tracker = _ShapeGuardTracker()

        def charge():
            if self.profiled:
                out.append("_bc[%d] += 1" % label)
            out.append(
                "_a += %d" % ((sums[label] << _ACC_SHIFT) | counts[label])
            )

        region_k = (sums[label] << _ACC_SHIFT) | counts[label]

        terminated = False
        for offset, index in enumerate(body):
            instruction = instructions[index]
            op = instruction.op
            if op == "goto":
                if self.profiled:
                    out.append("_bc[%d] += 1" % label)
                out.extend(
                    self._jump_lines(instruction.targets[0], label, base=region_k)
                )
                terminated = True
            elif op == "return":
                # The region's own charge folds into the final publish
                # (no accumulator update on the return path).
                if self.profiled:
                    out.append("_bc[%d] += 1" % label)
                out.append("_c[%d] = %s" % (CTX_RESULT, self.val(instruction.srcs[0])))
                out.append(
                    "_c[%d] = _a + %d"
                    % (CTX_ACC, (sums[label] << _ACC_SHIFT) | counts[label])
                )
                out.append("return")
                terminated = True
            elif op == "test":
                charge()
                t0, t1 = instruction.targets
                src = instruction.srcs[0]
                if src in self.bool_locs:
                    out.append("if %s:" % self.val(src))
                    out.extend("    " + line for line in self._jump_lines(t0, label))
                    out.append("else:")
                    out.extend("    " + line for line in self._jump_lines(t1, label))
                else:
                    out.append("_t = %s" % self.val(src))
                    out.append("if _t is True:")
                    out.extend("    " + line for line in self._jump_lines(t0, label))
                    out.append("elif _t is False:")
                    out.extend("    " + line for line in self._jump_lines(t1, label))
                    out.append("elif _to_boolean(_t):")
                    out.extend("    " + line for line in self._jump_lines(t0, label))
                    out.append("else:")
                    out.extend("    " + line for line in self._jump_lines(t1, label))
                terminated = True
            else:
                slot_offset = None
                if op in ("loadprop", "storeprop"):
                    slot_offset = shape_tracker.slot_offset(instruction)
                self.emit_instruction(out, index, offset, instruction, slot_offset)
                shape_tracker.observe(instruction)
        if not terminated:
            # The region flows into the next label: charge it and fall
            # down the chain to that label's arm (resolving through any
            # trampoline that happens to sit there).
            if self.profiled:
                out.append("_bc[%d] += 1" % label)
            out.extend(self._jump_lines(body[-1] + 1, label, base=region_k))
        return out

    def _jump_lines(self, target, label, base=0):
        """Statements for a jump from region ``label`` to ``target``.

        Trivial trampoline regions on the way are inlined: their moves
        execute at the splice point and their region constants fold
        into a single accumulator add (``base`` carries the source
        region's own constant when the caller wants it folded too).
        The jump then dispatches to the resolved final label — or
        returns directly when the chain ends in a trivial return.
        """
        splice, final, ret_src = self._resolve_target(target)
        lines = []
        total = base
        instructions = self.native.instructions
        for tramp in splice:
            if self.profiled:
                lines.append("_bc[%d] += 1" % tramp)
            for index in self.bodies[tramp][:-1]:
                ins = instructions[index]
                lines.append("%s = %s" % (self.val(ins.dest), self.val(ins.srcs[0])))
            total += (self.sums[tramp] << _ACC_SHIFT) | self.counts[tramp]
        if ret_src is not None:
            lines.append("_c[%d] = %s" % (CTX_RESULT, self.val(ret_src)))
            lines.append("_c[%d] = _a + %d" % (CTX_ACC, total))
            lines.append("return")
            return lines
        if total:
            lines.append("_a += %d" % total)
        lines.append("_pc = %d" % final)
        if final <= label:
            lines.append("continue")
        return lines


def _bad_pc(pc):
    return CompilerError("whole backend: control reached unknown pc %d" % pc)


#: Process-wide source-text → module code object memo (see
#: :func:`compile_whole`).  Cleared wholesale at the cap — entries are
#: tiny and identical sources recur heavily within one process.
_MODULE_CODE_MEMO = {}
_MODULE_CODE_MEMO_CAP = 512


def compile_whole(native, executor, profiled=False, capture=None):
    """Translate ``native`` into a single whole-binary function.

    Returns ``(fn, counts, sums, prefix)``: the generated function
    (``fn(ctx, pc)``), and per-region-leader instruction counts, summed
    static cycle costs, and inclusive cycle prefix-sums — the same
    accounting tables the closure backend keeps per block, because the
    region partition *is* the reachable block partition.

    ``profiled`` selects the variant that bumps the binary's per-leader
    block counters inline (``_bc``), giving the cycle profiler the
    exact per-block execution counts it folds into per-instruction
    counts.  Profiled and chaos-instrumented variants are distinct
    generated code, cached separately and never persisted.

    When the binary carries a thawed module (``native.disk_whole``), the
    stored code object replaces the host ``compile()`` step only after
    a byte-exact match against the source generated now — the same
    trust rule as the closure backend.
    """
    emitter = _WholeEmitter(native, executor, profiled=profiled)
    source, counts, sums, prefix = emitter.generate()
    namespace = emitter.namespace
    if profiled:
        namespace["_bc"] = executor.cycle_profiler.native_profile(native).block_counts

    disk = native.disk_whole
    if (
        disk is not None
        and not profiled
        and executor.fault_injector is None
        and disk[0] == source
    ):
        module_code = marshal.loads(disk[1])
    else:
        # In-process translation cache: the module code object is a
        # pure function of the source text (profiled and chaos variants
        # emit different text, so they key separately), and host
        # ``compile()`` dominates translation cost for small binaries.
        # Fresh engines re-translating the same binary — benchmark
        # repeats, the fuzz variant matrix — hit this instead.
        module_code = _MODULE_CODE_MEMO.get(source)
        if module_code is None:
            module_code = compile(
                source, "<whole-backend %s>" % native.code.name, "exec"
            )
            if len(_MODULE_CODE_MEMO) >= _MODULE_CODE_MEMO_CAP:
                _MODULE_CODE_MEMO.clear()
            _MODULE_CODE_MEMO[source] = module_code
    if capture is not None:
        capture["source"] = source
        capture["module_code"] = module_code
    exec(module_code, namespace)
    return namespace["_w"], counts, sums, prefix


def whole_artifact(native, executor):
    """The persistable whole-function module for ``native``, or None.

    The whole-backend twin of
    :func:`repro.lir.closures.closure_artifact`: translates the binary
    now (installing ``native.whole_cache``) and returns ``{"source",
    "code"}``.  Returns None for other executor types and whenever a
    fault injector or profiler is armed — instrumented source must
    never reach the persistent cache.
    """
    if not isinstance(executor, WholeExecutor):
        return None
    if executor.fault_injector is not None:
        return None
    if executor.cycle_profiler is not None:
        return None
    capture = {}
    fn, counts, sums, prefix = compile_whole(native, executor, capture=capture)
    native.whole_cache = (executor, None, False, fn, counts, sums, prefix)
    return {
        "source": capture["source"],
        "code": marshal.dumps(capture["module_code"]),
    }


class WholeExecutor(NativeExecutor):
    """The whole-binary backend (``executor_backend="whole"``).

    Runs each binary as one generated Python function; shares guard
    semantics, cycle accounting and the bailout protocol with the other
    backends.  ``EngineStats``, cycle counts, printed output and trace
    streams are bit-identical to both.
    """

    def run(self, native, function, this_value, args, entry="entry", osr_args=None, osr_locals=None):
        """Execute ``native`` via its whole-binary function."""
        # Profiled and chaos-instrumented translations are distinct
        # generated code, but the injector and profiler are fixed for
        # the executor's lifetime (the Engine wires them up during
        # construction, before any code runs) — so a hit needs only the
        # executor identity check.  The armed injector and profiled
        # flag still ride along in the tuple for the bailout/profiling
        # slow paths and for introspection.
        cache = native.whole_cache
        if cache is None or cache[0] is not self:
            profiled = self.cycle_profiler is not None
            fn, counts, sums, prefix = compile_whole(native, self, profiled=profiled)
            cache = (self, self.fault_injector, profiled, fn, counts, sums, prefix)
            native.whole_cache = cache

        if entry == "osr":
            if native.osr_index is None:
                raise CompilerError("native code for %s has no OSR entry" % native.code.name)
            pc = native.osr_index
        else:
            pc = native.entry_index
        ctx = [this_value, args, function, osr_args, osr_locals, None, 0, 0, 0]

        profiled = cache[2]
        cycles = 0
        executed = 0
        try:
            cache[3](ctx, pc)
            acc = ctx[CTX_ACC]
            cycles = acc >> _ACC_SHIFT
            executed = acc & _ACC_MASK
            return ctx[CTX_RESULT]
        except BaseException as exc:
            # The function published its progress before re-raising:
            # charge exactly through the faulting instruction, whose
            # absolute index is the region leader plus the offset.
            fault_pc = ctx[CTX_PC]
            fault = ctx[CTX_FAULT]
            acc = ctx[CTX_ACC]
            cycles = (acc >> _ACC_SHIFT) + cache[6][fault_pc][fault]
            executed = (acc & _ACC_MASK) + fault + 1
            if profiled:
                instr_counts = self.cycle_profiler.native_profile(native).instr_counts
                for offset in range(fault + 1):
                    instr_counts[fault_pc + offset] += 1
            if isinstance(exc, Bailout) and exc.native_index is None:
                exc.native_index = fault_pc + fault
            raise
        finally:
            self.cycles += cycles
            self.instructions_executed += executed
            if profiled:
                self.cycle_profiler.charge_native(cycles, executed)
