"""LIR: linear, virtual-register code between MIR and native emission.

Unlike MIR, LIR is machine-shaped: phis are gone (replaced by explicit
moves on edges), every value lives in a numbered virtual register, and
guards carry :class:`Snapshot` records that name the virtual registers
holding the interpreter frame's reconstruction values.
"""


class Snapshot(object):
    """Bailout metadata for one guard.

    ``mode`` is ``"at"`` or ``"after"`` (see
    :class:`repro.mir.instructions.ResumePoint`).  ``vregs`` lists the
    virtual registers of ``[args..., locals..., stack...]``; after
    register allocation :attr:`locations` holds their assigned places.
    """

    __slots__ = ("pc", "mode", "num_args", "num_locals", "vregs", "locations", "snapshot_id")

    def __init__(self, pc, mode, num_args, num_locals, vregs):
        self.pc = pc
        self.mode = mode
        self.num_args = num_args
        self.num_locals = num_locals
        self.vregs = vregs
        self.locations = None
        #: Emission-order id within the owning binary, assigned by
        #: ``generate_native``; bailout traces report it so a guard can
        #: be cross-referenced against the disassembly.
        self.snapshot_id = None

    def __repr__(self):
        return "Snapshot(pc=%d, %s, %d vregs)" % (self.pc, self.mode, len(self.vregs))


class LInstruction(object):
    """One LIR instruction.

    ``dest`` is a virtual register or None; ``srcs`` are virtual
    registers; ``extra`` carries immediate data (a constant value, a
    property name, an operator, jump targets...); ``snapshot`` is set
    on guards.
    """

    __slots__ = ("op", "dest", "srcs", "extra", "snapshot", "targets", "static_cost")

    def __init__(self, op, dest=None, srcs=(), extra=None, snapshot=None, targets=None):
        self.op = op
        self.dest = dest
        self.srcs = list(srcs)
        self.extra = extra
        self.snapshot = snapshot
        self.targets = targets  # block ids for goto/test
        #: Cycle price of one execution, precomputed at assembly time
        #: (``repro.lir.native.annotate_static_costs``); None while the
        #: instruction is still in virtual-register form.
        self.static_cost = None

    @property
    def is_guard(self):
        return self.snapshot is not None

    def __repr__(self):
        parts = [self.op]
        if self.dest is not None:
            parts.append("v%d =" % self.dest)
        if self.srcs:
            parts.append(",".join("v%d" % s for s in self.srcs))
        if self.extra is not None:
            parts.append(repr(self.extra))
        if self.targets is not None:
            parts.append("->%s" % (self.targets,))
        return "<L %s>" % " ".join(str(p) for p in parts)


class LIRFunction(object):
    """The lowered function: a linear stream plus block metadata."""

    def __init__(self, code):
        self.code = code
        self.instructions = []
        #: block id -> index of the block's first instruction.
        self.block_starts = {}
        #: index of the function entry (always 0) and the OSR entry.
        self.entry_index = 0
        self.osr_index = None
        self.num_vregs = 0

    def append(self, instruction):
        self.instructions.append(instruction)
        return instruction

    def __len__(self):
        return len(self.instructions)
