"""Closure-compiled native execution: the fast executor backend.

The reference :class:`~repro.lir.executor.NativeExecutor` re-decodes
every instruction on every execution: an attribute load for the
opcode, a ~40-arm if/elif dispatch, operand-index indirection.  This
module applies the paper's thesis to our own host instead — specialize
executable code on the values known at compile time.  Here *compile
time* is native-code assembly and the known values are the instruction
stream itself: each basic block is translated once into straight-line
Python source — operand locations, immediates, property names, guard
constants and jump targets inlined as literals — compiled with
``exec`` into a pre-bound closure, and cached on the
:class:`NativeCode`.  Executing the binary is then just::

    pc = handlers[pc](values, ctx)

one Python call per *block*, with zero per-instruction decoding or
dispatch inside it.

Cycle and instruction accounting is block-granular on the fast path:
the driver adds the block's precomputed instruction count and summed
static cost (the same assembly-time per-instruction costs the
reference backend charges) after each block completes.  For exactness
under guards and guest errors, every generated block maintains a
one-word progress marker (``_i``) and publishes it on any exception,
letting the driver charge exactly the instructions the reference
backend would have charged — up to and including the faulting one —
and stamp ``Bailout.native_index`` with the faulting instruction's
absolute index.

Semantics are bit-identical to the reference backend by construction:
every generated statement is a transliteration of the corresponding
if/elif arm, guards raise the same :class:`Bailout` with the same
frame reconstruction, and cycles accumulate in locals folded into the
executor's counters only on frame exit, so mid-run trace timestamps
match too (``python -m repro bench --wallclock`` measures the
wall-clock difference; the differential test suite proves stats,
cycles, printed output and trace streams match).
"""

import marshal

from repro.errors import CompilerError
from repro.jsvm import operations
from repro.jsvm.bytecode import Op
from repro.jsvm.interpreter import MAX_CALL_DEPTH
from repro.jsvm.objects import JSArray, JSObject, common_slot_offset
from repro.jsvm.values import (
    INT32_MAX,
    INT32_MIN,
    UNDEFINED,
    JSFunction,
    normalize_number,
    to_boolean,
    type_of,
)
from repro.lir.executor import Bailout, NativeExecutor, _compare, _matches, forced_bailout
from repro.lir.native import GUARD_OPS
from repro.lir.regalloc import NUM_REGS
from repro.mir.types import MIRType

#: Indices into the per-call ``ctx`` list every block closure receives.
#: Kept as a plain list (not an object) so generated code pays a single
#: C-level index instead of attribute lookups.  ``CTX_FAULT`` holds the
#: in-block offset of the instruction that raised, published by the
#: faulting block for the driver's exact partial accounting.
(
    CTX_THIS,
    CTX_ARGS,
    CTX_FUNCTION,
    CTX_OSR_ARGS,
    CTX_OSR_LOCALS,
    CTX_RESULT,
    CTX_FAULT,
) = range(7)

#: Sentinel pc returned by ``return`` blocks; the driver loop treats
#: any negative pc as "frame finished, result in ``ctx[CTX_RESULT]``".
RETURN_PC = -1

#: Ops that terminate a basic block.
_TERMINATORS = frozenset(["goto", "test", "return"])

#: Comparison operators whose Python operator matches guest semantics
#: exactly for every specialized ``compare`` kind (NaN compares false,
#: ``!=`` true, under both).
_COMPARE_PY = {
    Op.LT: "<",
    Op.LE: "<=",
    Op.GT: ">",
    Op.GE: ">=",
    Op.EQ: "==",
    Op.STRICTEQ: "==",
    Op.NE: "!=",
    Op.STRICTNE: "!=",
}


class _Binder(object):
    """Names runtime objects for the generated module's namespace.

    Codegen inlines what it can as source literals; everything else
    (snapshots, code objects, odd floats...) is bound to a fresh
    ``_kN`` name resolved through the exec namespace — the moral
    equivalent of a constant pool referenced rip-relative.
    """

    def __init__(self, namespace):
        self.namespace = namespace

    def bind(self, value):
        """Bind ``value`` into the namespace; returns its name."""
        name = "_k%d" % len(self.namespace)
        self.namespace[name] = value
        return name

    def lit(self, value):
        """Source text evaluating to ``value`` (literal when safe)."""
        if value is None or value is True or value is False:
            return repr(value)
        kind = type(value)
        if kind is int or kind is str:
            return repr(value)
        if kind is float:
            # NaN/inf have no literal spelling; -0.0 and friends do.
            if value != value or value in (float("inf"), float("-inf")):
                return self.bind(value)
            return repr(value)
        return self.bind(value)


def _emit(out, index, instruction, binder, inject=False, slot_offset=None):
    """Append the statement(s) for one instruction to ``out``.

    Each emitted fragment is a transliteration of the matching if/elif
    arm of :meth:`NativeExecutor.run` with every operand location
    inlined (negative locations index the immediate pool, exactly as
    in the reference executor's value array).  Scratch names ``_t``,
    ``_x``, ``_y`` are block-local and never live across instructions.

    ``inject`` (set only when the executor carries an armed fault
    injector at translation time) prefixes every guard with a consult
    of the injector — the closure-backend twin of the reference
    backend's pre-dispatch check, so forced bailouts fire at the same
    point with the same partial cycle charge.

    ``slot_offset`` (loadprop/storeprop only) is the constant slot
    index proven by a dominating ``guardshape`` in the same block
    (:class:`_ShapeGuardTracker`): the access compiles to a direct
    ``.slots[offset]`` read/write with no name lookup.
    """
    op = instruction.op
    srcs = instruction.srcs
    dest = instruction.dest
    extra = instruction.extra
    snap = instruction.snapshot

    if inject and snap is not None and op in GUARD_OPS:
        out.append("if _fire(%d):" % index)
        out.append("    _forced(_v, %d)" % index)

    def v(loc):
        return "_v[%d]" % loc

    def d():
        return "_v[%d]" % dest

    def snap_name():
        return binder.bind(snap)

    if op == "move":
        out.append("%s = %s" % (d(), v(srcs[0])))
    elif op == "const":
        # Normally folded into the immediate pool; kept for unfolded
        # streams (hand-built natives in tests).
        out.append("%s = %s" % (d(), binder.lit(extra)))
    elif op == "getarg":
        if extra == -1:
            out.append("%s = _c[0]" % d())
        else:
            out.append("_t = _c[1]")
            out.append(
                "%s = _t[%d] if %d < len(_t) else _UNDEF" % (d(), extra, extra)
            )
    elif op == "osrvalue":
        kind, arg_index = extra
        slot = CTX_OSR_ARGS if kind == "arg" else CTX_OSR_LOCALS
        out.append("%s = _c[%d][%d]" % (d(), slot, arg_index))
    elif op == "self":
        out.append("%s = _c[2]" % d())
    elif op in ("add_i", "sub_i"):
        sign = "+" if op == "add_i" else "-"
        if snap is None:
            out.append("%s = %s %s %s" % (d(), v(srcs[0]), sign, v(srcs[1])))
        else:
            out.append("_t = %s %s %s" % (v(srcs[0]), sign, v(srcs[1])))
            out.append("if _t > 2147483647 or _t < -2147483648:")
            out.append(
                "    _bail(_v, %s, 'overflow', %r, float(_t))" % (snap_name(), op)
            )
            out.append("%s = _t" % d())
    elif op == "mul_i":
        if snap is None:
            out.append("%s = %s * %s" % (d(), v(srcs[0]), v(srcs[1])))
        else:
            name = snap_name()
            out.append("_x = %s" % v(srcs[0]))
            out.append("_y = %s" % v(srcs[1]))
            out.append("_t = _x * _y")
            out.append("if _t > 2147483647 or _t < -2147483648:")
            out.append("    _bail(_v, %s, 'overflow', 'mul_i', float(_t))" % name)
            out.append("if _t == 0 and (_x < 0 or _y < 0):")
            # JS: (-n) * 0 is -0, a double; the int path bails.
            out.append("    _bail(_v, %s, 'negative zero', 'mul_i', -0.0)" % name)
            out.append("%s = _t" % d())
    elif op == "neg_i":
        if snap is None:
            out.append("%s = -%s" % (d(), v(srcs[0])))
        else:
            name = snap_name()
            out.append("_t = %s" % v(srcs[0]))
            out.append("if _t == 0:")
            out.append("    _bail(_v, %s, 'negative zero', 'neg_i', -0.0)" % name)
            out.append("if _t == -2147483648:")
            out.append("    _bail(_v, %s, 'overflow', 'neg_i', -float(_t))" % name)
            out.append("%s = -_t" % d())
    elif op in ("add_d", "sub_d", "mul_d"):
        sign = {"add_d": "+", "sub_d": "-", "mul_d": "*"}[op]
        out.append(
            "%s = _normalize(%s %s %s)" % (d(), v(srcs[0]), sign, v(srcs[1]))
        )
    elif op == "div_d":
        out.append("%s = _js_div(%s, %s)" % (d(), v(srcs[0]), v(srcs[1])))
    elif op == "mod_d":
        out.append("%s = _js_mod(%s, %s)" % (d(), v(srcs[0]), v(srcs[1])))
    elif op == "neg_d":
        out.append("%s = -%s" % (d(), v(srcs[0])))
    elif op == "bitop_i":
        call = "_binary(%s, %s, %s)" % (binder.lit(extra), v(srcs[0]), v(srcs[1]))
        if snap is None:
            out.append("%s = %s" % (d(), call))
        else:
            out.append("_t = %s" % call)
            out.append("if type(_t) is not int:")
            # ">>>" producing a value beyond int32.
            out.append(
                "    _bail(_v, %s, 'uint32 overflow', 'bitop_i', _t)" % snap_name()
            )
            out.append("%s = _t" % d())
    elif op == "toint32":
        out.append("%s = _to_int32(%s)" % (d(), v(srcs[0])))
    elif op == "todouble":
        out.append("%s = float(%s)" % (d(), v(srcs[0])))
    elif op == "concat":
        out.append("%s = %s + %s" % (d(), v(srcs[0]), v(srcs[1])))
    elif op == "compare":
        cmp_op, kind = extra
        py = _COMPARE_PY.get(cmp_op)
        if py is not None:
            # Python's operators agree with _compare for every kind,
            # including doubles: NaN makes <,<=,>,>=,== false and !=
            # true under both semantics.
            out.append("%s = %s %s %s" % (d(), v(srcs[0]), py, v(srcs[1])))
        else:
            out.append(
                "%s = _cmp(%s, %s, %s, %s)"
                % (d(), binder.lit(cmp_op), binder.lit(kind), v(srcs[0]), v(srcs[1]))
            )
    elif op == "binary_v":
        out.append(
            "%s = _binary(%s, %s, %s)" % (d(), binder.lit(extra), v(srcs[0]), v(srcs[1]))
        )
    elif op == "unary_v":
        out.append("%s = _unary(%s, %s)" % (d(), binder.lit(extra), v(srcs[0])))
    elif op == "not":
        out.append("%s = not _to_boolean(%s)" % (d(), v(srcs[0])))
    elif op == "typeof":
        out.append("%s = _type_of(%s)" % (d(), v(srcs[0])))
    elif op == "unbox":
        name = snap_name()
        out.append("_t = %s" % v(srcs[0]))
        if extra == MIRType.DOUBLE:
            out.append("_x = type(_t)")
            out.append("if _x is not float and _x is not int:")
            out.append("    _bail(_v, %s, 'type guard', 'unbox', _t)" % name)
            out.append("%s = float(_t) if _x is int else _t" % d())
        else:
            _emit_type_check(out, extra, name, "type guard", "unbox", binder)
            out.append("%s = _t" % d())
    elif op == "typebarrier":
        out.append("_t = %s" % v(srcs[0]))
        if extra != MIRType.VALUE:
            _emit_type_check(
                out, extra, snap_name(), "type barrier", "typebarrier", binder
            )
        out.append("%s = _t" % d())
    elif op == "checkoverrecursed":
        out.append("if _interp.call_depth >= %d:" % MAX_CALL_DEPTH)
        out.append(
            "    _bail(_v, %s, 'over-recursed', 'checkoverrecursed')" % snap_name()
        )
    elif op == "arraylength":
        out.append("%s = len(%s.elements)" % (d(), v(srcs[0])))
    elif op == "stringlength":
        out.append("%s = len(%s)" % (d(), v(srcs[0])))
    elif op == "boundscheck":
        out.append("_t = %s" % v(srcs[0]))
        out.append("if _t < 0 or _t >= %s:" % v(srcs[1]))
        out.append(
            "    _bail(_v, %s, 'bounds check', 'boundscheck')" % snap_name()
        )
    elif op == "guardshape":
        out.append(
            "if %s.shape.shape_id not in %s:" % (v(srcs[0]), binder.lit(extra))
        )
        # Observed shape id as the bailout ``actual`` (engine-side
        # retrain-noop detection; never pushed by "at"-mode resume).
        out.append(
            "    _bail(_v, %s, 'shape guard', 'guardshape', %s.shape.shape_id)"
            % (snap_name(), v(srcs[0]))
        )
    elif op == "loadelement":
        out.append("%s = %s.elements[%s]" % (d(), v(srcs[0]), v(srcs[1])))
    elif op == "storeelement":
        out.append("%s.elements[%s] = %s" % (v(srcs[0]), v(srcs[1]), v(srcs[2])))
    elif op == "getelem_v":
        out.append(
            "%s = _get_element(%s, %s, _runtime)" % (d(), v(srcs[0]), v(srcs[1]))
        )
    elif op == "setelem_v":
        out.append(
            "_set_element(%s, %s, %s)" % (v(srcs[0]), v(srcs[1]), v(srcs[2]))
        )
    elif op == "loadprop":
        if slot_offset is not None:
            out.append("%s = %s.slots[%d]" % (d(), v(srcs[0]), slot_offset))
        else:
            out.append("%s = %s.get(%s)" % (d(), v(srcs[0]), binder.lit(extra)))
    elif op == "storeprop":
        if slot_offset is not None:
            out.append("%s.slots[%d] = %s" % (v(srcs[0]), slot_offset, v(srcs[1])))
        else:
            out.append("%s.set(%s, %s)" % (v(srcs[0]), binder.lit(extra), v(srcs[1])))
    elif op == "getprop_v":
        out.append("%s = _get_property(%s, %s)" % (d(), v(srcs[0]), binder.lit(extra)))
    elif op == "setprop_v":
        out.append(
            "_set_property(%s, %s, %s)" % (v(srcs[0]), binder.lit(extra), v(srcs[1]))
        )
    elif op == "loadglobal":
        out.append("%s = _get_global(%s)" % (d(), binder.lit(extra)))
    elif op == "storeglobal":
        out.append("_set_global(%s, %s)" % (binder.lit(extra), v(srcs[0])))
    elif op == "newarray":
        out.append("%s = _JSArray([%s])" % (d(), ", ".join(v(loc) for loc in srcs)))
    elif op == "newobject":
        out.append("_t = _JSObject()")
        for key, loc in zip(extra, srcs):
            out.append("_t.set(%s, %s)" % (binder.lit(key), v(loc)))
        out.append("%s = _t" % d())
    elif op == "lambda":
        out.append("%s = _JSFunction(%s, ())" % (d(), binder.bind(extra)))
    elif op == "call":
        out.append(
            "%s = _call_value(%s, %s, [%s])"
            % (d(), v(srcs[0]), v(srcs[1]), ", ".join(v(loc) for loc in srcs[2:]))
        )
    elif op == "new":
        out.append(
            "%s = _construct(%s, [%s])"
            % (d(), v(srcs[0]), ", ".join(v(loc) for loc in srcs[1:]))
        )
    elif op == "goto":
        out.append("return %d" % instruction.targets[0])
    elif op == "test":
        t0, t1 = instruction.targets
        out.append("_t = %s" % v(srcs[0]))
        out.append("if _t is True:")
        out.append("    return %d" % t0)
        out.append("if _t is False:")
        out.append("    return %d" % t1)
        out.append("return %d if _to_boolean(_t) else %d" % (t0, t1))
    elif op == "return":
        out.append("_c[%d] = %s" % (CTX_RESULT, v(srcs[0])))
        out.append("return %d" % RETURN_PC)
    else:
        raise CompilerError("closure backend: unknown op %r" % op)


def _emit_type_check(out, expected, snap_ref, reason, guard_op, binder):
    """Emit the guard test for unbox/typebarrier on scratch ``_t``.

    Specializes the common primitive expectations to a single C-level
    ``type`` identity test (matching :func:`_matches` exactly — note
    ``bool`` is not int32); rarer object expectations fall back to the
    shared :func:`_matches` predicate.
    """
    if expected == MIRType.INT32:
        out.append("if type(_t) is not int:")
    elif expected == MIRType.BOOLEAN:
        out.append("if type(_t) is not bool:")
    elif expected == MIRType.STRING:
        out.append("if type(_t) is not str:")
    elif expected == MIRType.DOUBLE:
        out.append("if type(_t) is not float and type(_t) is not int:")
    else:
        out.append("if not _matches(_t, %s):" % binder.bind(expected))
    out.append("    _bail(_v, %s, %r, %r, _t)" % (snap_ref, reason, guard_op))


#: Ops that may mutate an object's shape out from under a prior
#: ``guardshape`` without touching the guarded register: arbitrary
#: guest code (calls) and generic property/element writes.  Any of
#: these flushes the shape-guard tracker.
_SHAPE_CLOBBERS = frozenset(["call", "new", "setprop_v", "setelem_v", "storeprop"])


class _ShapeGuardTracker(object):
    """Tracks which value locations are shape-guarded inside a block.

    Codegen walks each block linearly; a ``guardshape`` proves its
    receiver's shape is one of the guard's ids *from that point on*,
    until the receiver location is overwritten or any instruction runs
    that could transition a shape behind the register's back.  Both
    executor backends consult this to compile guarded ``loadprop`` /
    ``storeprop`` into constant-offset slot accesses
    (:func:`repro.jsvm.objects.common_slot_offset`).
    """

    def __init__(self):
        self._guards = {}

    def reset(self):
        self._guards.clear()

    def slot_offset(self, instruction):
        """Constant slot offset for a loadprop/storeprop, or None."""
        shape_ids = self._guards.get(instruction.srcs[0])
        if not shape_ids:
            return None
        return common_slot_offset(shape_ids, instruction.extra)

    def observe(self, instruction):
        """Update tracking *after* codegen of ``instruction``."""
        if instruction.op in _SHAPE_CLOBBERS:
            self._guards.clear()
            return
        if instruction.op == "guardshape":
            self._guards[instruction.srcs[0]] = instruction.extra
        dest = instruction.dest
        if dest is not None:
            self._guards.pop(dest, None)


def _block_leaders(native):
    """Indices that start a basic block: entries, jump targets, and
    the successor of every control-flow instruction."""
    instructions = native.instructions
    leaders = {native.entry_index}
    if native.osr_index is not None:
        leaders.add(native.osr_index)
    for index, instruction in enumerate(instructions):
        if instruction.targets is not None:
            leaders.update(instruction.targets)
        if instruction.op in _TERMINATORS and index + 1 < len(instructions):
            leaders.add(index + 1)
    return sorted(leader for leader in leaders if 0 <= leader < len(instructions))


def compile_closures(native, executor, capture=None):
    """Translate ``native`` into one pre-bound closure per basic block.

    Returns ``(handlers, counts, sums, prefix)``:

    - ``handlers[pc]`` for each block-leader ``pc`` is a callable
      ``block(values, ctx) -> next_pc`` executing the whole block
      (non-leader entries are ``None``; the driver never reaches them
      because every jump target is a leader);
    - ``counts[pc]``/``sums[pc]`` are the block's instruction count and
      summed static cycle cost, charged by the driver per completed
      block;
    - ``prefix[pc]`` is the block's inclusive cycle prefix-sum, used on
      exceptions to charge exactly through the faulting instruction.

    All four are cached on the :class:`NativeCode` by the caller, so
    translation is paid once per binary and invalidated exactly when
    the engine discards the binary (deoptimization drops the object).

    When the binary was thawed from the persistent code cache
    (``native.disk_closure``), the stored module code object replaces
    the host ``compile()`` step — but only after a byte-exact match
    against the source generated *now*, so correctness never depends
    on the blob.  ``capture``, when given, receives the generated
    ``source`` text and the final ``module_code`` object so the cache
    can persist them (:func:`closure_artifact`).
    """
    instructions = native.instructions
    costs = native.cost_table(executor.cost_model)
    interpreter = executor.interpreter
    runtime = executor.runtime
    injector = executor.fault_injector

    namespace = {
        "_UNDEF": UNDEFINED,
        "_bail": executor._bail,
        "_interp": interpreter,
        "_runtime": runtime,
        "_normalize": normalize_number,
        "_js_div": operations.js_div,
        "_js_mod": operations.js_mod,
        "_binary": operations.binary_op,
        "_unary": operations.unary_op,
        "_to_int32": operations.to_int32,
        "_to_boolean": to_boolean,
        "_type_of": type_of,
        "_cmp": _compare,
        "_matches": _matches,
        "_get_element": operations.get_element,
        "_set_element": operations.set_element,
        "_get_property": interpreter.get_property,
        "_set_property": operations.set_property,
        "_get_global": runtime.get_global,
        "_set_global": runtime.set_global,
        "_call_value": interpreter.call_value,
        "_construct": interpreter.construct,
        "_JSArray": JSArray,
        "_JSObject": JSObject,
        "_JSFunction": JSFunction,
    }
    if injector is not None:

        def _fire(index, _injector=injector, _native=native):
            return _injector.should_fire(_native, index)

        def _forced(values, index, _executor=executor, _instructions=instructions):
            forced_bailout(_executor, _instructions[index], values)

        namespace["_fire"] = _fire
        namespace["_forced"] = _forced
    binder = _Binder(namespace)

    leaders = _block_leaders(native)
    leader_set = set(leaders)
    size = len(instructions)
    handlers = [None] * size
    counts = [0] * size
    sums = [0] * size
    prefix = [None] * size

    source = []
    for leader in leaders:
        body = []
        index = leader
        while True:
            body.append(index)
            if instructions[index].op in _TERMINATORS:
                fallthrough = None
                break
            if index + 1 >= size or index + 1 in leader_set:
                fallthrough = index + 1
                break
            index += 1

        lines = ["def _b%d(_v, _c):" % leader, "    _i = 0", "    try:"]
        shape_tracker = _ShapeGuardTracker()
        for offset, instr_index in enumerate(body):
            if offset:
                lines.append("        _i = %d" % offset)
            instruction = instructions[instr_index]
            slot_offset = None
            if instruction.op in ("loadprop", "storeprop"):
                slot_offset = shape_tracker.slot_offset(instruction)
            stmts = []
            _emit(
                stmts,
                instr_index,
                instruction,
                binder,
                inject=injector is not None,
                slot_offset=slot_offset,
            )
            shape_tracker.observe(instruction)
            lines.extend("        " + stmt for stmt in stmts)
        if fallthrough is not None:
            lines.append("        return %d" % fallthrough)
        # Publish how far the block got before re-raising: the driver
        # charges exactly through the faulting instruction, as the
        # reference backend does.
        lines.append("    except BaseException:")
        lines.append("        _c[%d] = _i" % CTX_FAULT)
        lines.append("        raise")
        source.append("\n".join(lines))

        counts[leader] = len(body)
        running = 0
        block_prefix = []
        for instr_index in body:
            running += costs[instr_index]
            block_prefix.append(running)
        sums[leader] = running
        prefix[leader] = block_prefix

    text = "\n\n".join(source)
    disk = native.disk_closure
    if disk is not None and disk[0] == text:
        module_code = marshal.loads(disk[1])
    else:
        module_code = compile(text, "<closure-backend %s>" % native.code.name, "exec")
    if capture is not None:
        capture["source"] = text
        capture["module_code"] = module_code
    exec(module_code, namespace)
    for leader in leaders:
        handlers[leader] = namespace["_b%d" % leader]
    return handlers, counts, sums, prefix


def closure_artifact(native, executor):
    """The persistable closure module for ``native``, or None.

    Called by :meth:`repro.cache.DiskCodeCache.store` right after a
    fresh compile on the closure backend: translates the binary now
    (installing ``native.closure_cache`` so the work is not repeated on
    first execution) and returns ``{"source", "code"}`` — the generated
    module text plus its marshalled code object.  Returns None for
    other executor types, which have nothing host-compiled to persist,
    and when a fault injector is armed — chaos-instrumented source must
    never reach the persistent cache, where a later clean run could
    byte-match it.
    """
    if not isinstance(executor, ClosureExecutor):
        return None
    if executor.fault_injector is not None:
        return None
    capture = {}
    handlers, counts, sums, prefix = compile_closures(native, executor, capture=capture)
    native.closure_cache = (executor, handlers, counts, sums, prefix)
    return {
        "source": capture["source"],
        "code": marshal.dumps(capture["module_code"]),
    }


class ClosureExecutor(NativeExecutor):
    """The closure-compiled backend (``executor_backend="closure"``).

    Shares bailout reconstruction and the cumulative cycle/instruction
    counters with the reference executor; only the dispatch strategy
    differs.  ``EngineStats``, cycle counts, printed output and trace
    streams are bit-identical to the reference backend.
    """

    def run(self, native, function, this_value, args, entry="entry", osr_args=None, osr_locals=None):
        """Execute ``native`` via its compiled block closures.

        Raises :class:`Bailout` when a guard fails, exactly like the
        reference backend.
        """
        # Chaos-aware blocks (fault injector armed) are distinct code:
        # the cache key includes the injector so a normal executor
        # never reuses them and vice versa.
        injector = self.fault_injector
        cache_key = self if injector is None else (self, injector)
        cache = native.closure_cache
        if cache is not None and cache[0] == cache_key:
            _, handlers, counts, sums, prefix = cache
        else:
            # Paid once per binary (per executor): translate and bind.
            handlers, counts, sums, prefix = compile_closures(native, self)
            native.closure_cache = (cache_key, handlers, counts, sums, prefix)
        values = [UNDEFINED] * (NUM_REGS + native.num_slots) + native.immediates
        if entry == "osr":
            if native.osr_index is None:
                raise CompilerError("native code for %s has no OSR entry" % native.code.name)
            pc = native.osr_index
        else:
            pc = native.entry_index
        ctx = [this_value, args, function, osr_args, osr_locals, None, 0]

        profiler = self.cycle_profiler
        if profiler is None:
            cycles = 0
            executed = 0
            try:
                while True:
                    next_pc = handlers[pc](values, ctx)
                    executed += counts[pc]
                    cycles += sums[pc]
                    if next_pc >= 0:
                        pc = next_pc
                    else:
                        return ctx[CTX_RESULT]
            except BaseException as exc:
                # The faulting block published its progress in CTX_FAULT;
                # charge exactly through the faulting instruction, whose
                # absolute index is the block leader plus that offset.
                fault = ctx[CTX_FAULT]
                executed += fault + 1
                cycles += prefix[pc][fault]
                if isinstance(exc, Bailout) and exc.native_index is None:
                    exc.native_index = pc + fault
                raise
            finally:
                self.cycles += cycles
                self.instructions_executed += executed
        return self._run_profiled(
            profiler, native, handlers, counts, sums, prefix, values, ctx, pc
        )

    def _run_profiled(self, profiler, native, handlers, counts, sums, prefix, values, ctx, pc):
        """The driver loop with block-granular profiler attribution.

        Identical charging to the fast loop — completed blocks bump
        the binary's per-leader block counter, a faulting block's
        executed prefix lands on the per-instruction counters (the
        faulting instruction included, matching its cycle charge) —
        so the profiler's resolved per-instruction counts equal the
        reference backend's exactly.
        """
        record = profiler.native_profile(native)
        block_counts = record.block_counts
        cycles = 0
        executed = 0
        try:
            while True:
                next_pc = handlers[pc](values, ctx)
                executed += counts[pc]
                cycles += sums[pc]
                block_counts[pc] += 1
                if next_pc >= 0:
                    pc = next_pc
                else:
                    return ctx[CTX_RESULT]
        except BaseException as exc:
            fault = ctx[CTX_FAULT]
            executed += fault + 1
            cycles += prefix[pc][fault]
            instr_counts = record.instr_counts
            for offset in range(fault + 1):
                instr_counts[pc + offset] += 1
            if isinstance(exc, Bailout) and exc.native_index is None:
                exc.native_index = pc + fault
            raise
        finally:
            self.cycles += cycles
            self.instructions_executed += executed
            profiler.charge_native(cycles, executed)
