"""MIR → LIR lowering.

* Every MIR definition (phis included) receives a virtual register.
* Phis become explicit move sequences on the incoming edges; moves go
  through fresh temporaries (read-all-then-write-all), so parallel-move
  cycles (swap patterns in loop headers) are handled without a cycle
  detector.  Edges leaving a conditional branch get a trampoline block
  so the moves execute only on their own path.
* Guards translate their MIR resume points into LIR
  :class:`~repro.lir.lir_nodes.Snapshot` records.
"""

from repro.errors import CompilerError
from repro.jsvm.bytecode import Op
from repro.lir.lir_nodes import LInstruction, LIRFunction, Snapshot
from repro.mir import instructions as mi

_ARITH_I_OPS = {Op.ADD: "add_i", Op.SUB: "sub_i", Op.MUL: "mul_i"}
_ARITH_D_OPS = {
    Op.ADD: "add_d",
    Op.SUB: "sub_d",
    Op.MUL: "mul_d",
    Op.DIV: "div_d",
    Op.MOD: "mod_d",
}


class _Lowerer(object):
    def __init__(self, graph):
        self.graph = graph
        self.lir = LIRFunction(graph.code)
        self.vregs = {}
        self.next_vreg = 0
        self.edge_trampolines = []  # (edge_id, moves, successor_block_id)

    # -- virtual registers -----------------------------------------------------

    def vreg_of(self, definition):
        vreg = self.vregs.get(id(definition))
        if vreg is None:
            vreg = self.next_vreg
            self.next_vreg += 1
            self.vregs[id(definition)] = vreg
        return vreg

    def fresh_vreg(self):
        vreg = self.next_vreg
        self.next_vreg += 1
        return vreg

    # -- driver -------------------------------------------------------------------

    def run(self):
        graph = self.graph
        order = graph.reverse_postorder()
        # The function entry must be first in the stream.
        if order and order[0] is not graph.entry:
            order.remove(graph.entry)
            order.insert(0, graph.entry)

        for block in order:
            self.lir.block_starts[block.id] = len(self.lir.instructions)
            if block is graph.osr_entry:
                self.lir.osr_index = len(self.lir.instructions)
            for instruction in block.instructions:
                if instruction.is_control:
                    self.lower_terminator(block, instruction)
                else:
                    self.lower_instruction(instruction)
        # Emit edge trampolines (phi moves for conditional edges).
        for edge_id, moves, successor_id in self.edge_trampolines:
            self.lir.block_starts[edge_id] = len(self.lir.instructions)
            self.emit_moves(moves)
            self.lir.append(LInstruction("goto", targets=[successor_id]))
        self.lir.num_vregs = self.next_vreg
        return self.lir

    # -- phi moves ---------------------------------------------------------------

    def phi_moves(self, pred, successor):
        """Move pairs (src, dest) carrying phi inputs along pred->succ."""
        if not successor.phis:
            return []
        index = None
        for position, predecessor in enumerate(successor.predecessors):
            if predecessor is pred:
                index = position
                break
        if index is None:
            raise CompilerError(
                "edge B%d->B%d has no predecessor entry" % (pred.id, successor.id)
            )
        moves = []
        for phi in successor.phis:
            moves.append((self.vreg_of(phi.operands[index]), self.vreg_of(phi)))
        return moves

    def emit_moves(self, moves):
        """Emit a parallel move with the standard worklist algorithm.

        Moves whose destination is not pending as a source are safe to
        emit; cycles (swap patterns between loop phis) are broken with
        one temporary per cycle.
        """
        pending = [(src, dest) for src, dest in moves if src != dest]
        while pending:
            for index, (src, dest) in enumerate(pending):
                dest_is_pending_source = any(
                    other_src == dest
                    for position, (other_src, _other_dest) in enumerate(pending)
                    if position != index
                )
                if not dest_is_pending_source:
                    self.lir.append(LInstruction("move", dest=dest, srcs=[src]))
                    pending.pop(index)
                    break
            else:
                # Pure cycle (loop-phi swap): save one destination in a
                # temporary and redirect its pending readers to it.
                _src, dest = pending[0]
                temp = self.fresh_vreg()
                self.lir.append(LInstruction("move", dest=temp, srcs=[dest]))
                pending = [
                    (temp if pending_src == dest else pending_src, pending_dest)
                    for pending_src, pending_dest in pending
                ]

    # -- terminators ------------------------------------------------------------------

    def lower_terminator(self, block, terminator):
        if isinstance(terminator, mi.MReturn):
            self.lir.append(
                LInstruction("return", srcs=[self.vreg_of(terminator.operands[0])])
            )
            return
        if isinstance(terminator, mi.MGoto):
            successor = terminator.successors[0]
            self.emit_moves(self.phi_moves(block, successor))
            self.lir.append(LInstruction("goto", targets=[successor.id]))
            return
        if isinstance(terminator, mi.MTest):
            targets = []
            for successor in terminator.successors:
                moves = self.phi_moves(block, successor)
                if moves:
                    edge_id = "edge%d_%d" % (block.id, successor.id)
                    self.edge_trampolines.append((edge_id, moves, successor.id))
                    targets.append(edge_id)
                else:
                    targets.append(successor.id)
            self.lir.append(
                LInstruction(
                    "test", srcs=[self.vreg_of(terminator.operands[0])], targets=targets
                )
            )
            return
        raise CompilerError("unknown terminator %r" % terminator)

    # -- snapshots ---------------------------------------------------------------------

    def snapshot_of(self, instruction):
        resume = instruction.resume_point
        if resume is None:
            raise CompilerError("guard %r lowered without a resume point" % instruction)
        return Snapshot(
            resume.pc,
            resume.mode,
            resume.num_args,
            resume.num_locals,
            [self.vreg_of(operand) for operand in resume.operands],
        )

    # -- instructions ---------------------------------------------------------------------

    def lower_instruction(self, instruction):
        lir = self.lir
        srcs = [self.vreg_of(operand) for operand in instruction.operands]
        dest = self.vreg_of(instruction)

        def guard(op, extra=None, use_dest=True):
            lir.append(
                LInstruction(
                    op,
                    dest=dest if use_dest else None,
                    srcs=srcs,
                    extra=extra,
                    snapshot=self.snapshot_of(instruction),
                )
            )

        def plain(op, extra=None, use_dest=True):
            lir.append(
                LInstruction(op, dest=dest if use_dest else None, srcs=srcs, extra=extra)
            )

        if isinstance(instruction, mi.MConstant):
            plain("const", extra=instruction.value)
        elif isinstance(instruction, mi.MParameter):
            plain("getarg", extra=instruction.index)
        elif isinstance(instruction, mi.MOsrValue):
            plain("osrvalue", extra=(instruction.kind, instruction.index))
        elif isinstance(instruction, mi.MSelf):
            plain("self")
        elif isinstance(instruction, mi.MUnbox):
            guard("unbox", extra=instruction.type)
        elif isinstance(instruction, mi.MBox):
            plain("move")
        elif isinstance(instruction, mi.MTypeBarrier):
            guard("typebarrier", extra=instruction.expected)
        elif isinstance(instruction, mi.MToDouble):
            plain("todouble")
        elif isinstance(instruction, mi.MToInt32):
            plain("toint32")
        elif isinstance(instruction, mi.MCheckOverRecursed):
            guard("checkoverrecursed", use_dest=False)
        elif isinstance(instruction, mi.MBinaryArithI):
            if instruction.is_guard:
                guard(_ARITH_I_OPS[instruction.op])
            else:
                plain(_ARITH_I_OPS[instruction.op])
        elif isinstance(instruction, mi.MBinaryArithD):
            plain(_ARITH_D_OPS[instruction.op])
        elif isinstance(instruction, mi.MBitOpI):
            if instruction.is_guard:
                guard("bitop_i", extra=instruction.op)
            else:
                plain("bitop_i", extra=instruction.op)
        elif isinstance(instruction, mi.MNegI):
            if instruction.is_guard:
                guard("neg_i")
            else:
                plain("neg_i")
        elif isinstance(instruction, mi.MNegD):
            plain("neg_d")
        elif isinstance(instruction, mi.MConcat):
            plain("concat")
        elif isinstance(instruction, mi.MCompare):
            plain("compare", extra=(instruction.op, instruction.kind))
        elif isinstance(instruction, mi.MBinaryV):
            plain("binary_v", extra=instruction.op)
        elif isinstance(instruction, mi.MUnaryV):
            plain("unary_v", extra=instruction.op)
        elif isinstance(instruction, mi.MNot):
            plain("not")
        elif isinstance(instruction, mi.MTypeOf):
            plain("typeof")
        elif isinstance(instruction, mi.MArrayLength):
            plain("arraylength")
        elif isinstance(instruction, mi.MStringLength):
            plain("stringlength")
        elif isinstance(instruction, mi.MBoundsCheck):
            guard("boundscheck", use_dest=False)
        elif isinstance(instruction, mi.MGuardShape):
            guard("guardshape", extra=instruction.shape_ids, use_dest=False)
        elif isinstance(instruction, mi.MLoadElement):
            plain("loadelement")
        elif isinstance(instruction, mi.MStoreElement):
            plain("storeelement", use_dest=False)
        elif isinstance(instruction, mi.MGetElemV):
            plain("getelem_v")
        elif isinstance(instruction, mi.MSetElemV):
            plain("setelem_v", use_dest=False)
        elif isinstance(instruction, mi.MLoadProperty):
            plain("loadprop", extra=instruction.name)
        elif isinstance(instruction, mi.MStoreProperty):
            plain("storeprop", extra=instruction.name, use_dest=False)
        elif isinstance(instruction, mi.MGetPropV):
            plain("getprop_v", extra=instruction.name)
        elif isinstance(instruction, mi.MSetPropV):
            plain("setprop_v", extra=instruction.name, use_dest=False)
        elif isinstance(instruction, mi.MLoadGlobal):
            plain("loadglobal", extra=instruction.name)
        elif isinstance(instruction, mi.MStoreGlobal):
            plain("storeglobal", extra=instruction.name, use_dest=False)
        elif isinstance(instruction, mi.MNewArray):
            plain("newarray")
        elif isinstance(instruction, mi.MNewObject):
            plain("newobject", extra=instruction.keys)
        elif isinstance(instruction, mi.MLambda):
            plain("lambda", extra=instruction.code)
        elif isinstance(instruction, mi.MCall):
            plain("call")
        elif isinstance(instruction, mi.MNew):
            plain("new")
        else:
            raise CompilerError("cannot lower %r" % instruction)


def lower_graph(graph):
    """Lower a MIR graph to an :class:`LIRFunction`."""
    return _Lowerer(graph).run()
