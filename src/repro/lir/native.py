"""Native code: the final, register-allocated form.

A :class:`NativeCode` is what the engine caches and the executor runs:
a linear instruction stream whose operands are physical locations
(register indices < ``NUM_REGS``, stack-slot indices above), resolved
jump targets, and per-guard snapshots with located reconstruction
values.

``len(native)`` — the instruction count — is the code-size metric of
the paper's Figure 10.
"""

from repro.errors import CompilerError
from repro.lir.lir_nodes import LInstruction
from repro.lir.regalloc import NUM_REGS, allocate_registers
from repro.lir.lowering import lower_graph

#: Int ops whose guard is an overflow/negative-zero check priced at
#: one extra cycle (cleared by the overflow-elimination extension).
CHECKED_ARITH = frozenset(["add_i", "sub_i", "mul_i", "neg_i", "bitop_i"])

#: Every op that can raise a :class:`~repro.lir.executor.Bailout` when
#: it carries a snapshot — the engine's notion of a *guard*.  The
#: fault injector (``repro.engine.bailout.GuardFaultInjector``) and the
#: profiler's guard forensics both identify guards by this set.
GUARD_OPS = frozenset(
    [
        "add_i",
        "sub_i",
        "mul_i",
        "neg_i",
        "bitop_i",
        "unbox",
        "typebarrier",
        "checkoverrecursed",
        "boundscheck",
        "guardshape",
    ]
)

#: ``Bailout.reason`` used for guard failures forced by the fault
#: injector (chaos deopt) rather than a genuinely failed speculation.
FAULT_INJECTED = "fault-injected"


def guard_indices(native):
    """Indices of every guard instruction in ``native``'s stream.

    A guard is an op in :data:`GUARD_OPS` carrying a snapshot; the
    returned list is in stream order, so the fault injector's "Nth
    guard of this binary" selector is stable across identical
    compilations (like snapshot ids).
    """
    return [
        index
        for index, instruction in enumerate(native.instructions)
        if instruction.snapshot is not None and instruction.op in GUARD_OPS
    ]

#: Default cost model instance, created lazily (importing it at module
#: scope would cycle through ``repro.engine``).
_DEFAULT_COST_MODEL = None


def _default_cost_model():
    global _DEFAULT_COST_MODEL
    if _DEFAULT_COST_MODEL is None:
        from repro.engine.config import CostModel

        _DEFAULT_COST_MODEL = CostModel()
    return _DEFAULT_COST_MODEL


def static_instruction_cost(instruction, cost_model):
    """Cycle price of one execution of ``instruction``.

    Every component is statically known once operands have physical
    locations: the base opcode price, the one-cycle overflow-check
    surcharge on guarded int arithmetic (an x86 ``jo`` after the
    operation), and the spill price for each operand or result living
    in a stack slot.  Negative source locations index the immediate
    pool — instruction-encoded constants, free of memory traffic.
    """
    cost = cost_model.native_costs.get(instruction.op, cost_model.native_op)
    if instruction.snapshot is not None and instruction.op in CHECKED_ARITH:
        cost += 1
    dest = instruction.dest
    if dest is not None and dest >= NUM_REGS:
        cost += cost_model.spill_access
    for loc in instruction.srcs:
        if loc >= NUM_REGS:
            cost += cost_model.spill_access
    return cost


def annotate_static_costs(instructions, cost_model=None):
    """Stamp ``static_cost`` on every finalized native instruction.

    Runs once at assembly time (the tail of :func:`generate_native`),
    so no executor ever recomputes per-step dict lookups or spill
    scans in its dispatch loop.
    """
    if cost_model is None:
        cost_model = _default_cost_model()
    for instruction in instructions:
        instruction.static_cost = static_instruction_cost(instruction, cost_model)


class NativeCode(object):
    """One compiled binary for a guest function."""

    def __init__(
        self, code, instructions, entry_index, osr_index, num_slots, meta=None, immediates=()
    ):
        self.code = code
        self.instructions = instructions
        self.entry_index = entry_index
        self.osr_index = osr_index
        self.num_slots = num_slots
        #: Constant pool baked into the binary.  Operand locations that
        #: are negative index this pool from the end of the executor's
        #: value array (an x86 immediate / rip-relative constant).
        self.immediates = list(immediates)
        #: Free-form compilation metadata (specialized args, stats...).
        self.meta = meta if meta is not None else {}
        #: Executor caches, paid once per binary: the per-pc cycle
        #: table (keyed by cost model) and the closure backend's
        #: compiled handlers (keyed by executor).  Both die with the
        #: binary, so invalidation is the engine discarding it.
        self._cost_table = None
        self._cost_table_model = None
        self.closure_cache = None
        #: The whole-function backend's compiled module, keyed by
        #: (executor, injector, profiled) — distinct instrumentation
        #: means distinct generated code (repro.lir.wholefn).
        self.whole_cache = None
        #: Persistent-cache payload for the closure backend: the
        #: generated module ``(source_text, marshalled_code_bytes)``
        #: thawed from disk.  ``compile_closures`` reuses the code
        #: object only after a byte-exact source match, so a stale or
        #: foreign blob silently falls back to compiling fresh.
        self.disk_closure = None
        #: Same, for the whole-function backend's generated module
        #: (repro.lir.wholefn applies the identical byte-exact rule).
        self.disk_whole = None

    def cost_table(self, cost_model):
        """Per-pc cycle prices under ``cost_model``, cached.

        Assembly already stamps ``static_cost`` using the default
        model; this recomputes only for a different model instance and
        memoizes per binary either way.
        """
        if self._cost_table is not None and self._cost_table_model is cost_model:
            return self._cost_table
        table = [
            static_instruction_cost(instruction, cost_model)
            for instruction in self.instructions
        ]
        self._cost_table = table
        self._cost_table_model = cost_model
        return table

    @property
    def size(self):
        """Code size in native instructions (the Figure 10 metric)."""
        return len(self.instructions)

    def __len__(self):
        return len(self.instructions)

    def __repr__(self):
        return "<NativeCode %s (%d instrs%s)>" % (
            self.code.name,
            len(self.instructions),
            ", osr" if self.osr_index is not None else "",
        )

    def disassemble(self):
        lines = []
        for index, instruction in enumerate(self.instructions):
            marker = "=>" if index == self.osr_index else "  "
            lines.append("%s %4d  %r" % (marker, index, instruction))
        return "\n".join(lines)


def fold_immediates(lir):
    """Turn ``const`` definitions into a baked-in immediate pool.

    Every ``const`` instruction is removed from the stream; its uses
    (instruction sources and snapshot references) are rewritten to
    ``("imm", index)`` markers.  This mirrors real code generation —
    x86 encodes constants as instruction immediates — and it is what
    makes parameter specialization pay: baked-in argument values
    occupy no registers and no instructions.

    Returns the immediate pool (list of guest values).
    """
    pool = []
    pool_index = {}
    imm_map = {}
    for instruction in lir.instructions:
        if instruction.op != "const":
            continue
        from repro.jsvm.values import value_key

        key = value_key(instruction.extra)
        index = pool_index.get(key)
        if index is None:
            index = len(pool)
            pool.append(instruction.extra)
            pool_index[key] = index
        imm_map[instruction.dest] = index

    if not imm_map:
        return pool

    # Rebuild the stream without const instructions, remapping indices.
    kept = []
    index_map = {}
    for old_index, instruction in enumerate(lir.instructions):
        if instruction.op == "const":
            continue
        index_map[old_index] = len(kept)
        kept.append(instruction)

    def remap_start(old_start):
        # A block may start with (now removed) consts: advance to the
        # first kept instruction at or after the old start.
        probe = old_start
        while probe not in index_map and probe < len(lir.instructions):
            probe += 1
        return index_map.get(probe, len(kept))

    lir.block_starts = {
        block_id: remap_start(start) for block_id, start in lir.block_starts.items()
    }
    if lir.osr_index is not None:
        lir.osr_index = remap_start(lir.osr_index)
    lir.instructions = kept

    for instruction in kept:
        instruction.srcs = [
            ("imm", imm_map[vreg]) if vreg in imm_map else vreg
            for vreg in instruction.srcs
        ]
        if instruction.snapshot is not None:
            instruction.snapshot.vregs = [
                ("imm", imm_map[vreg]) if vreg in imm_map else vreg
                for vreg in instruction.snapshot.vregs
            ]
    return pool


def generate_native(graph):
    """Lower, register-allocate and emit native code for a MIR graph.

    Returns ``(native, codegen_stats)`` where the stats dict feeds the
    engine's compile-time cost model (LIR size, interval count, spill
    count).
    """
    lir = lower_graph(graph)
    immediates = fold_immediates(lir)
    allocation = allocate_registers(lir)

    pool_size = len(immediates)

    def _locate(vreg):
        if type(vreg) is tuple:
            return vreg[1] - pool_size  # negative: indexes the pool
        return allocation.location_of(vreg)

    # Resolve symbolic jump targets to instruction indices.
    instructions = []
    for source in lir.instructions:
        instruction = LInstruction(
            source.op,
            dest=None if source.dest is None else _locate(source.dest),
            srcs=[_locate(vreg) for vreg in source.srcs],
            extra=source.extra,
            snapshot=source.snapshot,
            targets=source.targets,
        )
        if source.snapshot is not None:
            source.snapshot.locations = [
                _locate(vreg) for vreg in source.snapshot.vregs
            ]
        instructions.append(instruction)

    # Coalesced moves (same location on both sides) become no-ops;
    # delete them and remap block starts.
    kept = []
    index_map = {}
    for old_index, instruction in enumerate(instructions):
        if (
            instruction.op == "move"
            and instruction.srcs
            and instruction.dest == instruction.srcs[0]
        ):
            continue
        index_map[old_index] = len(kept)
        kept.append(instruction)

    def remap_index(old_index):
        probe = old_index
        while probe not in index_map and probe < len(instructions):
            probe += 1
        return index_map.get(probe, len(kept) - 1)

    block_starts = {
        block_id: remap_index(start) for block_id, start in lir.block_starts.items()
    }
    osr_index = None if lir.osr_index is None else remap_index(lir.osr_index)
    instructions = kept

    for instruction in instructions:
        if instruction.targets is not None:
            resolved = []
            for target in instruction.targets:
                index = block_starts.get(target)
                if index is None:
                    raise CompilerError("unresolved jump target %r" % (target,))
                resolved.append(index)
            instruction.targets = resolved

    # Jump threading: branch straight through goto-only trampolines.
    def thread(start):
        seen = set()
        target = start
        while (
            target not in seen
            and target < len(instructions)
            and instructions[target].op == "goto"
        ):
            seen.add(target)
            target = instructions[target].targets[0]
        return target

    for instruction in instructions:
        if instruction.targets is not None:
            instruction.targets = [thread(target) for target in instruction.targets]
    if osr_index is not None:
        osr_index = thread(osr_index)

    # Fallthrough elision: a goto to the next instruction is a no-op
    # in linear code; deleting one can expose another, so iterate.
    entry_index = 0
    while True:
        removable = set(
            index
            for index, instruction in enumerate(instructions)
            if instruction.op == "goto" and instruction.targets[0] == index + 1
        )
        if not removable:
            break
        final_map = {}
        new_index = 0
        for index in range(len(instructions)):
            if index not in removable:
                final_map[index] = new_index
                new_index += 1

        def resolve(target):
            while target in removable:
                target += 1
            return final_map[target]

        for instruction in instructions:
            if instruction.targets is not None:
                instruction.targets = [resolve(target) for target in instruction.targets]
        entry_index = resolve(entry_index)
        if osr_index is not None:
            osr_index = resolve(osr_index)
        instructions = [
            instruction
            for index, instruction in enumerate(instructions)
            if index not in removable
        ]

    # Number the guard snapshots in emission order: the stable
    # "resume-point id" bailout traces report (docs/TRACING.md).
    next_snapshot_id = 0
    for instruction in instructions:
        if instruction.snapshot is not None:
            instruction.snapshot.snapshot_id = next_snapshot_id
            next_snapshot_id += 1

    # Operands have physical locations now: every cycle-cost component
    # is static, so price each instruction once, at assembly time.
    annotate_static_costs(instructions)

    native = NativeCode(
        graph.code,
        instructions,
        entry_index=entry_index,
        osr_index=osr_index,
        num_slots=allocation.num_slots,
        immediates=immediates,
        meta={
            "specialized": graph.specialized,
            "specialized_args": graph.specialized_args,
            "osr_pc": graph.osr_pc,
        },
    )
    stats = {
        "lir_instructions": len(lir.instructions),
        "intervals": allocation.num_intervals,
        "spills": allocation.num_spills,
    }
    return native, stats
