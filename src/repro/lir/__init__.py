"""LIR and the simulated native back end.

MIR is lowered to LIR (virtual registers, linear code, explicit phi
moves), register-allocated with a linear-scan allocator, and emitted
as "native" code for a simulated 8-register target machine executed by
the cycle-counting :class:`~repro.lir.executor.NativeExecutor`.
"""

from repro.lir.lir_nodes import LInstruction, Snapshot
from repro.lir.lowering import lower_graph
from repro.lir.regalloc import allocate_registers, NUM_REGS
from repro.lir.native import NativeCode, generate_native
from repro.lir.executor import NativeExecutor, Bailout

__all__ = [
    "LInstruction",
    "Snapshot",
    "lower_graph",
    "allocate_registers",
    "NUM_REGS",
    "NativeCode",
    "generate_native",
    "NativeExecutor",
    "Bailout",
]
