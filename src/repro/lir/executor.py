"""The simulated native target: executes :class:`NativeCode`.

The executor is a small register machine — eight registers plus stack
slots — whose instruction semantics mirror the interpreter's exactly
(both defer to :mod:`repro.jsvm.operations`).  Each instruction is
billed cycles from the engine's :class:`CostModel`; operands living in
stack slots cost extra, modelling memory traffic from spills.

Guards check the speculation they encode and raise :class:`Bailout`
on failure.  A bailout carries everything needed to rebuild the
interpreter frame from the guard's snapshot: the argument/local/stack
values read out of their native locations, the resume pc and mode, and
(for "after"-mode guards) the correct result the interpreter would
have produced — e.g. an int32 add that overflowed hands back the exact
double sum, so execution resumes as if the interpreter had done the
addition itself.
"""

import math

from repro.errors import CompilerError
from repro.jsvm import operations
from repro.jsvm.bytecode import Op
from repro.jsvm.interpreter import MAX_CALL_DEPTH
from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import (
    INT32_MAX,
    INT32_MIN,
    UNDEFINED,
    JSFunction,
    NativeFunction,
    normalize_number,
    to_boolean,
    type_of,
)
from repro.lir.native import CHECKED_ARITH, FAULT_INJECTED, GUARD_OPS
from repro.lir.regalloc import NUM_REGS
from repro.mir.types import MIRType


class Bailout(Exception):
    """A guard failed; native execution must fall back to bytecode."""

    def __init__(self, snapshot, args, locals_, stack, pc, mode, reason, guard_op, actual=None):
        super().__init__("bailout at pc %d (%s)" % (pc, reason))
        self.snapshot = snapshot
        # Note: not named `args` — BaseException.args is a special
        # attribute that silently coerces assignments to tuples.
        self.frame_args = args
        self.frame_locals = locals_
        self.frame_stack = stack
        self.pc = pc
        self.mode = mode
        self.reason = reason
        self.guard_op = guard_op
        #: For "after"-mode guards: the correct value the interpreter
        #: would have produced (already appended to ``stack``).
        self.actual = actual
        #: Index of the faulting instruction in the native stream,
        #: annotated by the executor as the exception unwinds (the
        #: tracing layer reports it alongside the resume-point id).
        self.native_index = None


def _matches(value, mirtype):
    """Runtime type check for unbox/typebarrier guards."""
    if mirtype == MIRType.INT32:
        return type(value) is int
    if mirtype == MIRType.DOUBLE:
        return type(value) is float or type(value) is int
    if mirtype == MIRType.BOOLEAN:
        return type(value) is bool
    if mirtype == MIRType.STRING:
        return type(value) is str
    if mirtype == MIRType.ARRAY:
        return isinstance(value, JSArray)
    if mirtype == MIRType.OBJECT:
        return isinstance(value, JSObject) and not isinstance(value, JSArray)
    if mirtype == MIRType.FUNCTION:
        return isinstance(value, (JSFunction, NativeFunction))
    if mirtype == MIRType.VALUE:
        return True
    return False


#: Back-compat alias: the checked-arith set moved to ``lir.native`` so
#: assembly-time cost precomputation and executors share one source.
_CHECKED_ARITH = CHECKED_ARITH


def forced_recovery_value(op, extra, srcvals):
    """The exact recovery value a forced bailout must hand back.

    ``srcvals`` holds the guard's source values (already read out of
    their locations — the whole-function backend keeps values in
    Python locals, so callers pass them explicitly).  The result is
    computed exactly as the guard's own execution would have: the
    genuine result for a speculation that held, the genuine bailout
    value (overflowed double, ``-0.0``, the off-type value) for one
    that happened to fail on this very execution.
    """
    if op == "add_i" or op == "sub_i":
        a = srcvals[0]
        b = srcvals[1]
        result = a + b if op == "add_i" else a - b
        return float(result) if (result > INT32_MAX or result < INT32_MIN) else result
    if op == "mul_i":
        a = srcvals[0]
        b = srcvals[1]
        result = a * b
        if result > INT32_MAX or result < INT32_MIN:
            return float(result)
        if result == 0 and (a < 0 or b < 0):
            return -0.0
        return result
    if op == "neg_i":
        value = srcvals[0]
        if value == 0:
            return -0.0
        if value == INT32_MIN:
            return -float(value)
        return -value
    if op == "bitop_i":
        return operations.binary_op(extra, srcvals[0], srcvals[1])
    if op == "unbox" or op == "typebarrier":
        return srcvals[0]
    # checkoverrecursed / boundscheck / guardshape resume "at" the
    # faulting bytecode and re-execute it; no recovery value is needed.
    return None


def forced_bailout(executor, instruction, values):
    """Raise the fault-injected :class:`Bailout` for a guard.

    Called by the array-based backends when the armed
    :class:`~repro.engine.bailout.GuardFaultInjector` selects a guard,
    *instead of* executing the guard's arm.  Resuming the interpreter
    from the produced state is bit-identical to never having run the
    native code at all (see :func:`forced_recovery_value`).
    """
    actual = forced_recovery_value(
        instruction.op,
        instruction.extra,
        [values[loc] for loc in instruction.srcs],
    )
    executor._bail(values, instruction.snapshot, FAULT_INJECTED, instruction.op, actual)


class NativeExecutor(object):
    """Runs native code against the shared heap and runtime."""

    def __init__(self, interpreter, cost_model):
        self.interpreter = interpreter
        self.runtime = interpreter.runtime
        self.cost_model = cost_model
        #: Cycles burned by native execution (cumulative).
        self.cycles = 0
        #: Native instructions executed (cumulative).
        self.instructions_executed = 0
        #: Optional cycle-exact profiler (repro.telemetry.profiler),
        #: assigned by the engine.  When set, runs additionally record
        #: per-instruction execution counts and report their charges;
        #: None (the default) costs one local None-check per run.
        self.cycle_profiler = None
        #: Optional :class:`~repro.engine.bailout.GuardFaultInjector`
        #: ("chaos deopt"), assigned by the engine.  When set, every
        #: guard consults it before its own check and raises a
        #: fault-injected :class:`Bailout` when selected; None (the
        #: default) costs one hoisted None-check per run.
        self.fault_injector = None

    # -- frame reconstruction on bailout -------------------------------------------

    def _bail(self, values, snapshot, reason, op, actual=None):
        locations = snapshot.locations
        num_args = snapshot.num_args
        num_locals = snapshot.num_locals
        args = [values[loc] for loc in locations[:num_args]]
        locals_ = [values[loc] for loc in locations[num_args : num_args + num_locals]]
        stack = [values[loc] for loc in locations[num_args + num_locals :]]
        if snapshot.mode == "after":
            stack.append(actual)
        raise Bailout(
            snapshot, args, locals_, stack, snapshot.pc, snapshot.mode, reason, op, actual
        )

    # -- the dispatch loop ---------------------------------------------------------

    def run(self, native, function, this_value, args, entry="entry", osr_args=None, osr_locals=None):
        """Execute ``native``; returns the guest return value.

        Raises :class:`Bailout` when a guard fails — the engine turns
        that into interpreter resumption.
        """
        # Layout: [registers | spill slots | immediate pool]; negative
        # operand locations index the pool from the end (x86-style
        # instruction immediates, free of register pressure).
        values = [UNDEFINED] * (NUM_REGS + native.num_slots) + native.immediates
        instructions = native.instructions
        # Per-pc cycle prices, precomputed at assembly time: the
        # dispatch loop pays one list index instead of a dict lookup,
        # a checked-arith test and a spill scan per instruction.
        static_costs = native.cost_table(self.cost_model)
        interpreter = self.interpreter
        runtime = self.runtime
        profiler = self.cycle_profiler
        injector = self.fault_injector
        instr_counts = (
            profiler.native_profile(native).instr_counts if profiler is not None else None
        )

        if entry == "osr":
            if native.osr_index is None:
                raise CompilerError("native code for %s has no OSR entry" % native.code.name)
            pc = native.osr_index
        else:
            pc = native.entry_index

        cycles = 0
        executed = 0
        try:
            while True:
                instruction = instructions[pc]
                op = instruction.op
                srcs = instruction.srcs
                dest = instruction.dest
                executed += 1
                cycles += static_costs[pc]
                # Counted before execution, so a faulting instruction
                # is included — matching the cycle charge above.
                if instr_counts is not None:
                    instr_counts[pc] += 1
                pc += 1

                if (
                    injector is not None
                    and instruction.snapshot is not None
                    and op in GUARD_OPS
                    and injector.should_fire(native, pc - 1)
                ):
                    forced_bailout(self, instruction, values)

                if op == "move":
                    values[dest] = values[srcs[0]]
                elif op == "const":
                    values[dest] = instruction.extra
                elif op == "getarg":
                    index = instruction.extra
                    if index == -1:
                        values[dest] = this_value
                    elif index < len(args):
                        values[dest] = args[index]
                    else:
                        values[dest] = UNDEFINED
                elif op == "osrvalue":
                    kind, index = instruction.extra
                    source = osr_args if kind == "arg" else osr_locals
                    values[dest] = source[index]
                elif op == "self":
                    values[dest] = function
                elif op == "add_i":
                    result = values[srcs[0]] + values[srcs[1]]
                    if (result > INT32_MAX or result < INT32_MIN) and instruction.snapshot is not None:
                        self._bail(values, instruction.snapshot, "overflow", op, float(result))
                    values[dest] = result
                elif op == "sub_i":
                    result = values[srcs[0]] - values[srcs[1]]
                    if (result > INT32_MAX or result < INT32_MIN) and instruction.snapshot is not None:
                        self._bail(values, instruction.snapshot, "overflow", op, float(result))
                    values[dest] = result
                elif op == "mul_i":
                    a = values[srcs[0]]
                    b = values[srcs[1]]
                    result = a * b
                    if instruction.snapshot is not None:
                        if result > INT32_MAX or result < INT32_MIN:
                            self._bail(values, instruction.snapshot, "overflow", op, float(result))
                        if result == 0 and (a < 0 or b < 0):
                            # JS: (-n) * 0 is -0, a double; the int path bails.
                            self._bail(values, instruction.snapshot, "negative zero", op, -0.0)
                    values[dest] = result
                elif op == "neg_i":
                    value = values[srcs[0]]
                    if instruction.snapshot is not None:
                        if value == 0:
                            self._bail(values, instruction.snapshot, "negative zero", op, -0.0)
                        if value == INT32_MIN:
                            self._bail(values, instruction.snapshot, "overflow", op, -float(value))
                    values[dest] = -value
                elif op in ("add_d", "sub_d", "mul_d", "div_d", "mod_d"):
                    values[dest] = _DOUBLE_OPS[op](values[srcs[0]], values[srcs[1]])
                elif op == "neg_d":
                    values[dest] = -values[srcs[0]]
                elif op == "bitop_i":
                    result = operations.binary_op(instruction.extra, values[srcs[0]], values[srcs[1]])
                    if instruction.snapshot is not None and type(result) is not int:
                        # ">>>" producing a value beyond int32.
                        self._bail(values, instruction.snapshot, "uint32 overflow", op, result)
                    values[dest] = result
                elif op == "toint32":
                    values[dest] = operations.to_int32(values[srcs[0]])
                elif op == "todouble":
                    values[dest] = float(values[srcs[0]])
                elif op == "concat":
                    values[dest] = values[srcs[0]] + values[srcs[1]]
                elif op == "compare":
                    cmp_op, kind = instruction.extra
                    values[dest] = _compare(cmp_op, kind, values[srcs[0]], values[srcs[1]])
                elif op == "binary_v":
                    values[dest] = operations.binary_op(
                        instruction.extra, values[srcs[0]], values[srcs[1]]
                    )
                elif op == "unary_v":
                    values[dest] = operations.unary_op(instruction.extra, values[srcs[0]])
                elif op == "not":
                    values[dest] = not to_boolean(values[srcs[0]])
                elif op == "typeof":
                    values[dest] = type_of(values[srcs[0]])
                elif op == "unbox":
                    value = values[srcs[0]]
                    expected = instruction.extra
                    if not _matches(value, expected):
                        self._bail(values, instruction.snapshot, "type guard", op, value)
                    if expected == MIRType.DOUBLE and type(value) is int:
                        value = float(value)
                    values[dest] = value
                elif op == "typebarrier":
                    value = values[srcs[0]]
                    if not _matches(value, instruction.extra):
                        self._bail(values, instruction.snapshot, "type barrier", op, value)
                    values[dest] = value
                elif op == "checkoverrecursed":
                    if interpreter.call_depth >= MAX_CALL_DEPTH:
                        self._bail(values, instruction.snapshot, "over-recursed", op)
                elif op == "arraylength":
                    values[dest] = len(values[srcs[0]].elements)
                elif op == "stringlength":
                    values[dest] = len(values[srcs[0]])
                elif op == "boundscheck":
                    index = values[srcs[0]]
                    length = values[srcs[1]]
                    if index < 0 or index >= length:
                        self._bail(values, instruction.snapshot, "bounds check", op)
                elif op == "guardshape":
                    shape_id = values[srcs[0]].shape.shape_id
                    if shape_id not in instruction.extra:
                        # The observed shape id rides along as the
                        # bailout's ``actual``: "at"-mode resume never
                        # pushes it on the guest stack, but the engine
                        # reads it to decide whether a retrain would
                        # change the binary (docs/DEOPTLESS.md).
                        self._bail(
                            values, instruction.snapshot, "shape guard", op, shape_id
                        )
                elif op == "loadelement":
                    values[dest] = values[srcs[0]].elements[values[srcs[1]]]
                elif op == "storeelement":
                    values[srcs[0]].elements[values[srcs[1]]] = values[srcs[2]]
                elif op == "getelem_v":
                    values[dest] = operations.get_element(
                        values[srcs[0]], values[srcs[1]], runtime
                    )
                elif op == "setelem_v":
                    operations.set_element(values[srcs[0]], values[srcs[1]], values[srcs[2]])
                elif op == "loadprop":
                    values[dest] = values[srcs[0]].get(instruction.extra)
                elif op == "storeprop":
                    values[srcs[0]].set(instruction.extra, values[srcs[1]])
                elif op == "getprop_v":
                    values[dest] = interpreter.get_property(values[srcs[0]], instruction.extra)
                elif op == "setprop_v":
                    operations.set_property(values[srcs[0]], instruction.extra, values[srcs[1]])
                elif op == "loadglobal":
                    values[dest] = runtime.get_global(instruction.extra)
                elif op == "storeglobal":
                    runtime.set_global(instruction.extra, values[srcs[0]])
                elif op == "newarray":
                    values[dest] = JSArray([values[loc] for loc in srcs])
                elif op == "newobject":
                    obj = JSObject()
                    for key, loc in zip(instruction.extra, srcs):
                        obj.set(key, values[loc])
                    values[dest] = obj
                elif op == "lambda":
                    values[dest] = JSFunction(instruction.extra, ())
                elif op == "call":
                    callee = values[srcs[0]]
                    call_this = values[srcs[1]]
                    call_args = [values[loc] for loc in srcs[2:]]
                    values[dest] = interpreter.call_value(callee, call_this, call_args)
                elif op == "new":
                    callee = values[srcs[0]]
                    call_args = [values[loc] for loc in srcs[1:]]
                    values[dest] = interpreter.construct(callee, call_args)
                elif op == "goto":
                    pc = instruction.targets[0]
                elif op == "test":
                    if to_boolean(values[srcs[0]]):
                        pc = instruction.targets[0]
                    else:
                        pc = instruction.targets[1]
                elif op == "return":
                    return values[srcs[0]]
                else:
                    raise CompilerError("native executor: unknown op %r" % op)
        except Bailout as bail:
            # `pc` already advanced past the faulting instruction.
            if bail.native_index is None:
                bail.native_index = pc - 1
            raise
        finally:
            self.cycles += cycles
            self.instructions_executed += executed
            if profiler is not None:
                profiler.charge_native(cycles, executed)


def _double(value):
    return float(value)


def _div_d(a, b):
    return operations.js_div(a, b)


def _mod_d(a, b):
    return operations.js_mod(a, b)


_DOUBLE_OPS = {
    "add_d": lambda a, b: normalize_number(a + b),
    "sub_d": lambda a, b: normalize_number(a - b),
    "mul_d": lambda a, b: normalize_number(a * b),
    "div_d": _div_d,
    "mod_d": _mod_d,
}


def _compare(op, kind, a, b):
    """Specialized comparison; mirrors operations.binary_op exactly."""
    if kind == "d":
        if math.isnan(a) or math.isnan(b):
            return False if op not in (Op.NE, Op.STRICTNE) else True
    if op == Op.LT:
        return a < b
    if op == Op.LE:
        return a <= b
    if op == Op.GT:
        return a > b
    if op == Op.GE:
        return a >= b
    if op in (Op.EQ, Op.STRICTEQ):
        return a == b
    if op in (Op.NE, Op.STRICTNE):
        return a != b
    raise CompilerError("bad compare op %r" % op)
