"""Generators for the paper's non-table figures and §4 studies.

* Figures 1 & 2 — web-corpus call and argument-set histograms;
* Figure 3 — the same histograms measured live on the suites;
* Figure 4 — parameter type distributions;
* Figure 10 — per-function code size, baseline vs specialized;
* §4 policy table — specialized / successful / deoptimized counts;
* §4 recompilations — recompilation growth under specialization.
"""

from repro.engine.config import BASELINE, FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.jsvm.interpreter import Interpreter
from repro.telemetry.codesize import CodeSizeReport
from repro.telemetry.histograms import CallProfiler
from repro.workloads.web import WebCorpusConfig, generate_web_trace


def web_histograms(config=None):
    """Figures 1, 2, 4 (WEB column): profile a synthetic session.

    Returns the populated :class:`CallProfiler`.
    """
    profiler = CallProfiler()
    generate_web_trace(profiler, config or WebCorpusConfig())
    return profiler


def suite_histograms(suite):
    """Figure 3: run a suite interpreted with a call profiler attached."""
    profiler = CallProfiler()
    for benchmark in suite:
        interpreter = Interpreter(profiler=profiler)
        interpreter.run_source(benchmark.source)
    return profiler


def parameter_types(profiler):
    """Figure 4 rows for one profiled population."""
    return profiler.parameter_type_distribution()


def code_size_study(suite, spec_config=None, engine_kwargs=None):
    """Figure 10 for one suite: returns (CodeSizeReport, runs).

    Runs every benchmark under the baseline and the specialized
    configuration, using the per-function *smallest* binary each mode
    produced (the paper's methodology), merged across the suite.
    """
    spec_config = spec_config or FULL_SPEC
    baseline_sizes = {}
    spec_sizes = {}
    names = {}

    for benchmark in suite:
        base_engine = Engine(config=BASELINE, **(engine_kwargs or {}))
        base_engine.run_source(benchmark.source)
        spec_engine = Engine(config=spec_config, **(engine_kwargs or {}))
        spec_engine.run_source(benchmark.source)
        # code ids are process-global and fresh per compile_source, so
        # match functions by (benchmark, name) instead.
        for cid, size in base_engine.stats.code_sizes.items():
            key = (benchmark.name, base_engine.stats.function_names[cid])
            if key not in baseline_sizes or size < baseline_sizes[key]:
                baseline_sizes[key] = size
            names[key] = "%s:%s" % key
        for cid, size in spec_engine.stats.code_sizes.items():
            key = (benchmark.name, spec_engine.stats.function_names[cid])
            if key not in spec_sizes or size < spec_sizes[key]:
                spec_sizes[key] = size
            names[key] = "%s:%s" % key

    return CodeSizeReport.from_size_maps(baseline_sizes, spec_sizes, names)


def policy_stats(suite, config=None, engine_kwargs=None):
    """§4 specialization policy counts summed over a suite.

    Returns ``(specialized, successful, deoptimized)`` function counts.
    """
    config = config or FULL_SPEC
    specialized = 0
    successful = 0
    deoptimized = 0
    for benchmark in suite:
        engine = Engine(config=config, **(engine_kwargs or {}))
        engine.run_source(benchmark.source)
        specialized += len(engine.stats.specialized_functions)
        successful += len(engine.stats.successfully_specialized)
        deoptimized += len(engine.stats.deoptimized_functions)
    return specialized, successful, deoptimized


def recompilation_stats(suite, config=None, engine_kwargs=None):
    """§4 recompilations: totals under baseline vs specialization.

    Returns ``(baseline_compiles, spec_compiles, growth_percent)``
    where growth measures how many more compilations of the same
    function specialization causes.
    """
    config = config or FULL_SPEC
    baseline_compiles = 0
    spec_compiles = 0
    for benchmark in suite:
        base_engine = Engine(config=BASELINE, **(engine_kwargs or {}))
        base_engine.run_source(benchmark.source)
        spec_engine = Engine(config=config, **(engine_kwargs or {}))
        spec_engine.run_source(benchmark.source)
        baseline_compiles += base_engine.stats.compiles
        spec_compiles += spec_engine.stats.compiles
    growth = (
        100.0 * (spec_compiles - baseline_compiles) / baseline_compiles
        if baseline_compiles
        else 0.0
    )
    return baseline_compiles, spec_compiles, growth
