"""Bench regression sentinel: structured deltas between two runs.

``tools/perf_gate.py`` answers pass/fail; this module answers *what
moved*.  It diffs two wall-clock result dicts (the shape
``BENCH_wallclock.json`` holds — see ``repro.bench.wallclock``) into a
machine-readable delta report: one record per (section, suite, metric)
with the baseline value, the current value, the percent delta and a
verdict against a per-kind threshold.

Metric kinds and their default thresholds:

``time``
    Host seconds (``*_seconds``).  Noisy across machines and runs, so
    the widest tolerance (15%).  Lower is better.
``ratio``
    Same-machine speedup ratios (``speedup``, ``whole_speedup``,
    geomeans, warm-cache speedup).  Machine-comparable; 10% tolerance.
    Higher is better.
``cycles``
    Deterministic model cycles (the background-lane, deoptless and
    serving sections).  Bit
    reproducible, so the tolerance is exactly zero: any rise is a
    regression, and two runs of the same tree compare clean.  Lower
    is better.
``exact``
    Deterministic work counters (``sim_instructions``, ``disk_hits``).
    Report-only: a change is surfaced as ``changed`` but never fails
    the sentinel — counts legitimately move when benchmarks change.

Verdicts: ``ok`` (within threshold), ``regressed``, ``improved``
(moved the good way past the threshold), ``changed`` (exact metric
moved), ``missing`` (in baseline, absent from the current run —
treated as a regression, matching ``check_gate``'s loud failure).
"""

import json

from repro.bench.wallclock import ALL_SECTIONS

#: Default per-kind fractional tolerances (``--threshold kind=value``).
THRESHOLDS = {"time": 0.15, "ratio": 0.10, "cycles": 0.0}

#: Which way is good, per kind.  ``exact`` has no direction.
_LOWER_IS_BETTER = {"time": True, "ratio": False, "cycles": True}

#: (metric-name suffix match, kind) for per-suite backend rows.
_SUITE_METRICS = (
    ("_seconds", "time"),
    ("speedup", "ratio"),
    ("sim_instructions", "exact"),
)


def _classify_suite_metric(name):
    """Kind for one key of a ``suites`` row; None to skip it."""
    if name.endswith("_seconds"):
        return "time"
    if name == "speedup" or name == "whole_speedup":
        return "ratio"
    if name == "sim_instructions":
        return "exact"
    # ``*_sips`` is derived from seconds and sim_instructions — diffing
    # it would double-count the same movement.
    return None


def _delta(section, suite, metric, kind, base, cur, thresholds):
    """One delta record, verdict included."""
    record = {
        "section": section,
        "suite": suite,
        "metric": metric,
        "kind": kind,
        "baseline": base,
        "current": cur,
        "delta_pct": None,
        "threshold_pct": None,
        "status": "ok",
    }
    if cur is None:
        record["status"] = "missing"
        return record
    if base:
        record["delta_pct"] = round(100.0 * (cur - base) / base, 4)
    elif cur != base:
        record["delta_pct"] = None
    if kind == "exact":
        if cur != base:
            record["status"] = "changed"
        return record
    tolerance = thresholds.get(kind, THRESHOLDS[kind])
    record["threshold_pct"] = round(100.0 * tolerance, 4)
    if base is None or not base:
        if cur != base:
            record["status"] = "changed"
        return record
    fraction = (cur - base) / base
    if _LOWER_IS_BETTER[kind]:
        if fraction > tolerance:
            record["status"] = "regressed"
        elif fraction < -tolerance:
            record["status"] = "improved"
    else:
        if fraction < -tolerance:
            record["status"] = "regressed"
        elif fraction > tolerance:
            record["status"] = "improved"
    return record


def compare_results(current, baseline, thresholds=None, sections=None):
    """Diff two wall-clock result dicts into a delta report.

    ``sections`` narrows the comparison (names from
    ``repro.bench.wallclock.ALL_SECTIONS``); a section absent from the
    *current* dict is skipped regardless, so the sentinel composes
    with partial runs exactly like ``check_gate``.  Returns::

        {"status": "pass" | "fail",
         "regressions": n, "improvements": n, "changes": n,
         "thresholds": {kind: fraction},
         "deltas": [record, ...]}
    """
    merged = dict(THRESHOLDS)
    merged.update(thresholds or {})
    if sections is None:
        sections = ALL_SECTIONS
    deltas = []

    def diff(section, suite, metric, kind, base, cur):
        deltas.append(_delta(section, suite, metric, kind, base, cur, merged))

    if "backends" in sections and current.get("suites"):
        for suite, base_row in sorted(baseline.get("suites", {}).items()):
            cur_row = current.get("suites", {}).get(suite, {})
            for metric in sorted(base_row):
                kind = _classify_suite_metric(metric)
                if kind is None:
                    continue
                diff("backends", suite, metric, kind, base_row[metric], cur_row.get(metric))
        for metric in ("geomean_speedup", "geomean_whole_speedup"):
            if metric in baseline:
                diff("backends", "geomean", metric, "ratio",
                     baseline[metric], current.get(metric))
    if "background" in sections and current.get("background_compile"):
        base_bg = baseline.get("background_compile", {})
        cur_bg = current.get("background_compile", {})
        for suite, base_row in sorted(base_bg.get("suites", {}).items()):
            cur_row = cur_bg.get("suites", {}).get(suite, {})
            for metric in ("sync_cycles", "background_cycles", "cycle_ratio"):
                if metric in base_row:
                    diff("background", suite, metric, "cycles",
                         base_row[metric], cur_row.get(metric))
        if "geomean_cycle_ratio" in base_bg:
            diff("background", "geomean", "geomean_cycle_ratio", "cycles",
                 base_bg["geomean_cycle_ratio"], cur_bg.get("geomean_cycle_ratio"))
    if "deoptless" in sections and current.get("deoptless"):
        base_dl = baseline.get("deoptless", {})
        cur_dl = current.get("deoptless", {})
        if base_dl:
            for metric in ("off_cycles", "on_cycles", "cycle_ratio",
                           "invalidation_ratio"):
                if metric in base_dl:
                    diff("deoptless", "churn", metric, "cycles",
                         base_dl[metric], cur_dl.get(metric))
            for metric in ("off_invalidations", "on_invalidations",
                           "deoptless_reentries", "deoptless_misses",
                           "deoptless_generalized_compiles"):
                if metric in base_dl:
                    diff("deoptless", "churn", metric, "exact",
                         base_dl[metric], cur_dl.get(metric))
            for bench, base_row in sorted(base_dl.get("benchmarks", {}).items()):
                cur_row = cur_dl.get("benchmarks", {}).get(bench, {})
                for metric in ("off_cycles", "on_cycles", "cycle_ratio"):
                    if metric in base_row:
                        diff("deoptless", bench, metric, "cycles",
                             base_row[metric], cur_row.get(metric))
            for flag in ("outputs_identical", "backends_identical"):
                if not cur_dl.get(flag, True):
                    deltas.append({
                        "section": "deoptless",
                        "suite": "churn",
                        "metric": flag,
                        "kind": "exact",
                        "baseline": True,
                        "current": False,
                        "delta_pct": None,
                        "threshold_pct": None,
                        "status": "regressed",
                    })
    if "warm-cache" in sections and current.get("warm_cache"):
        base_warm = baseline.get("warm_cache", {})
        cur_warm = current.get("warm_cache", {})
        if base_warm:
            for metric, kind in (
                ("cold_seconds", "time"),
                ("warm_seconds", "time"),
                ("speedup", "ratio"),
                ("disk_hits", "exact"),
            ):
                if metric in base_warm:
                    diff("warm-cache", "web", metric, kind,
                         base_warm[metric], cur_warm.get(metric))
            if not cur_warm.get("cycles_identical", True):
                deltas.append({
                    "section": "warm-cache",
                    "suite": "web",
                    "metric": "cycles_identical",
                    "kind": "exact",
                    "baseline": True,
                    "current": False,
                    "delta_pct": None,
                    "threshold_pct": None,
                    "status": "regressed",
                })

    if "serving" in sections and current.get("serving"):
        base_sv = baseline.get("serving", {})
        cur_sv = current.get("serving", {})
        if base_sv:
            # Latencies are deterministic model cycles on the admission
            # clock: zero tolerance, like the background lane.
            for metric in ("p50_latency_cycles", "p99_latency_cycles",
                           "total_latency_cycles"):
                if metric in base_sv:
                    diff("serving", "fleet", metric, "cycles",
                         base_sv[metric], cur_sv.get(metric))
            for metric in ("warm_hit_rate", "cold_hit_rate"):
                if metric in base_sv:
                    diff("serving", "fleet", metric, "ratio",
                         base_sv[metric], cur_sv.get(metric))
            for metric in ("requests", "rejected", "batches", "tenants"):
                if metric in base_sv:
                    diff("serving", "fleet", metric, "exact",
                         base_sv[metric], cur_sv.get(metric))
            if cur_sv.get("isolation_violations", 0):
                deltas.append({
                    "section": "serving",
                    "suite": "fleet",
                    "metric": "isolation_violations",
                    "kind": "exact",
                    "baseline": base_sv.get("isolation_violations", 0),
                    "current": cur_sv["isolation_violations"],
                    "delta_pct": None,
                    "threshold_pct": None,
                    "status": "regressed",
                })
            if not cur_sv.get("cycles_identical", True):
                deltas.append({
                    "section": "serving",
                    "suite": "fleet",
                    "metric": "cycles_identical",
                    "kind": "exact",
                    "baseline": True,
                    "current": False,
                    "delta_pct": None,
                    "threshold_pct": None,
                    "status": "regressed",
                })

    regressions = sum(1 for d in deltas if d["status"] in ("regressed", "missing"))
    return {
        "status": "fail" if regressions else "pass",
        "regressions": regressions,
        "improvements": sum(1 for d in deltas if d["status"] == "improved"),
        "changes": sum(1 for d in deltas if d["status"] == "changed"),
        "thresholds": merged,
        "deltas": deltas,
    }


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return "%.4f" % value
    return "{:,}".format(value) if isinstance(value, int) else str(value)


def format_compare(report, verbose=False):
    """Human-readable delta table; quiet rows elided unless verbose."""
    lines = []
    lines.append(
        "-- bench compare: %s (%d regressed, %d improved, %d changed) --"
        % (
            report["status"].upper(),
            report["regressions"],
            report["improvements"],
            report["changes"],
        )
    )
    lines.append(
        "%-11s %-10s %-22s %12s %12s %9s %10s"
        % ("section", "suite", "metric", "baseline", "current", "delta", "status")
    )
    for delta in report["deltas"]:
        if not verbose and delta["status"] == "ok":
            continue
        pct = delta["delta_pct"]
        lines.append(
            "%-11s %-10s %-22s %12s %12s %9s %10s"
            % (
                delta["section"],
                delta["suite"],
                delta["metric"],
                _fmt(delta["baseline"]),
                _fmt(delta["current"]),
                "-" if pct is None else "%+.2f%%" % pct,
                delta["status"],
            )
        )
    if len(lines) == 2:
        lines.append("(all %d metrics within thresholds)" % len(report["deltas"]))
    return "\n".join(lines)


def write_compare_json(report, path):
    """Write the delta report (the CI ``bench-delta.json`` artifact)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_compare_json(path):
    """Load a report written by :func:`write_compare_json`."""
    with open(path) as handle:
        return json.load(handle)
