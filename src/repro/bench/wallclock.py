"""Wall-clock comparison of executor backends (host-level benching).

Everything else in :mod:`repro.bench` measures *model* cycles — the
deterministic currency of the paper's figures, identical on every
machine.  This module instead measures real seconds: it exists to
prove that the closure-compiled backend (``repro.lir.closures``)
actually buys host performance over the reference decode loop, and to
keep that proof from regressing.

Protocol: each suite is run end-to-end (compilation, interpretation
and native execution included — the honest cost of the engine) under
each backend, best-of-``repeats`` wall-clock seconds.  The headline
metric is the per-suite **speedup** ``simple_seconds /
closure_seconds`` and its geometric mean.  Speedups are ratios of two
measurements taken on the same machine moments apart, so they are
comparable across hosts — which is what lets ``tools/perf_gate.py``
gate on a checked-in baseline (``BENCH_wallclock.json``) with a
tolerance, instead of gating on absolute seconds.
"""

import json
import math
import os
import shutil
import tempfile
import time

from repro.engine.config import FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.workloads import ALL_SUITES

#: Backends compared by default: the reference decode loop, the
#: closure-compiled blocks, and the whole-binary functions.
DEFAULT_BACKENDS = ("simple", "closure", "whole")


def measure_suite(suite, backend, config=FULL_SPEC, repeats=3):
    """Time one full pass of ``suite`` under ``backend``.

    Returns ``{"seconds", "native_instructions", "interp_ops"}`` with
    best-of-``repeats`` seconds (the standard way to strip scheduler
    noise from a deterministic workload) and the per-pass simulated
    work counters, which are backend-invariant and let reports quote
    simulated instructions per host second.
    """
    best = None
    native_instructions = 0
    interp_ops = 0
    for _ in range(repeats):
        native_instructions = 0
        interp_ops = 0
        start = time.perf_counter()
        for benchmark in suite:
            engine = Engine(config=config, executor_backend=backend)
            engine.run_source(benchmark.source)
            native_instructions += engine.executor.instructions_executed
            interp_ops += engine.interpreter.ops_executed
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return {
        "seconds": best,
        "native_instructions": native_instructions,
        "interp_ops": interp_ops,
    }


def measure_background_cycles(suites=None, config=FULL_SPEC):
    """Simulated-cycle comparison: synchronous vs background lane.

    Unlike the rest of this module, the numbers here are *model
    cycles* — deterministic and machine-independent — so the section
    rides along in ``BENCH_wallclock.json`` as an exact regression
    gate.  Per suite: summed ``total_cycles`` under
    ``background_compile=False`` and ``=True``, plus the per-benchmark
    geomean of the ``background / sync`` ratio (< 1.0 means the lane
    hides compile stalls).
    """
    if suites is None:
        suites = ALL_SUITES
    section = {"suites": {}}
    all_ratios = []
    for name, suite in suites.items():
        sync_total = 0
        background_total = 0
        ratios = []
        for benchmark in suite:
            cycles = []
            for background in (False, True):
                engine = Engine(config=config, background_compile=background)
                engine.run_source(benchmark.source)
                cycles.append(engine.stats.total_cycles)
            sync_total += cycles[0]
            background_total += cycles[1]
            if cycles[0] > 0:
                ratios.append(cycles[1] / cycles[0])
        geomean = (
            math.exp(sum(math.log(r) for r in ratios) / len(ratios)) if ratios else 1.0
        )
        section["suites"][name] = {
            "sync_cycles": sync_total,
            "background_cycles": background_total,
            "cycle_ratio": round(geomean, 5),
        }
        all_ratios.extend(ratios)
    if all_ratios:
        section["geomean_cycle_ratio"] = round(
            math.exp(sum(math.log(r) for r in all_ratios) / len(all_ratios)), 5
        )
    return section


def measure_deoptless_cycles(config=FULL_SPEC, backends=DEFAULT_BACKENDS):
    """Simulated-cycle comparison: §4 bail-and-recompile vs deoptless.

    Runs the precondition-churn suite (``repro.workloads.churn``,
    docs/DEOPTLESS.md) with the specialization dispatch table off
    (``Engine(deoptless=False)`` — the paper's §4 discard policy) and
    on, on the reference backend.  Like the background section these
    are *model cycles*: deterministic, machine-independent, gated
    exactly.  Per benchmark the table must also be **observably
    free**: guest output is compared between off and on, and the on
    run is repeated under every other executor backend, which must
    reproduce both the output and the cycle total bit for bit.

    The headline ratios carry the feature's acceptance floors
    (``DEOPTLESS_CYCLE_CEILING``, ``DEOPTLESS_DISCARD_CEILING``):
    dispatching into retained siblings must cut the suite's total
    cycles by >= 20% and its binary discards by >= 50% versus the
    bail-and-recompile policy.
    """
    from repro.workloads import ALL_SUITES as _SUITES

    suite = _SUITES["churn"]
    off_cycles = on_cycles = 0
    off_invalidations = on_invalidations = 0
    reentries = misses = generalized = 0
    outputs_identical = True
    backends_identical = True
    benchmarks = {}
    for benchmark in suite:
        off_engine = Engine(config=config, deoptless=False)
        off_output = off_engine.run_source(benchmark.source)
        on_engine = Engine(config=config, deoptless=True)
        on_output = on_engine.run_source(benchmark.source)
        outputs_identical = outputs_identical and off_output == on_output
        for backend in backends:
            if backend == "simple":
                continue
            alt = Engine(config=config, deoptless=True, executor_backend=backend)
            alt_output = alt.run_source(benchmark.source)
            backends_identical = backends_identical and (
                alt_output == on_output
                and alt.stats.total_cycles == on_engine.stats.total_cycles
            )
        off_cycles += off_engine.stats.total_cycles
        on_cycles += on_engine.stats.total_cycles
        off_invalidations += off_engine.stats.invalidations
        on_invalidations += on_engine.stats.invalidations
        reentries += on_engine.stats.deoptless_reentries
        misses += on_engine.stats.deoptless_misses
        generalized += on_engine.stats.deoptless_generalized_compiles
        benchmarks[benchmark.name] = {
            "off_cycles": off_engine.stats.total_cycles,
            "on_cycles": on_engine.stats.total_cycles,
            "cycle_ratio": round(
                on_engine.stats.total_cycles / off_engine.stats.total_cycles, 5
            ),
        }
    return {
        "suite": "churn",
        "off_cycles": off_cycles,
        "on_cycles": on_cycles,
        "cycle_ratio": round(on_cycles / off_cycles, 5),
        "off_invalidations": off_invalidations,
        "on_invalidations": on_invalidations,
        "invalidation_ratio": round(
            on_invalidations / off_invalidations, 5
        ) if off_invalidations else 0.0,
        "deoptless_reentries": reentries,
        "deoptless_misses": misses,
        "deoptless_generalized_compiles": generalized,
        "outputs_identical": outputs_identical,
        "backends_identical": backends_identical,
        "benchmarks": benchmarks,
    }


def _web_programs():
    """The deterministic page-load workload for the warm-cache bench."""
    from repro.workloads import WEBSITES, generate_website_program

    return [
        generate_website_program(
            name,
            num_functions,
            polymorphic_fraction,
            # Explicit seed: the generator's default derives from
            # hash(name), which PYTHONHASHSEED randomizes per process.
            seed=sum(ord(char) for char in name),
        )
        for name, num_functions, polymorphic_fraction in WEBSITES
    ]


def measure_warm_cache(repeats=3, config=FULL_SPEC, backend="closure", cache_root=None):
    """Wall-clock win of a warm persistent code cache over a cold one.

    The workload is the web (page-load) generator — the scenario a
    startup cache exists for: many functions, compiled once, same
    sources on every visit.  *Cold* passes start from a cleared cache
    directory (stores included in the timed region); *warm* passes
    reuse the artifacts the cold pass left behind (loads included).
    Both are best-of-``repeats``; the headline is ``cold_seconds /
    warm_seconds``.  Simulated cycles are asserted identical between
    cold and warm — the cache is a host-time optimization only.
    """
    from repro.cache import DiskCodeCache

    programs = _web_programs()
    root = cache_root
    cleanup = False
    if root is None:
        root = tempfile.mkdtemp(prefix="repro-warmcache-")
        cleanup = True
    try:

        def one_pass():
            cache = DiskCodeCache(root=root)
            cycles = 0
            start = time.perf_counter()
            for source in programs:
                engine = Engine(
                    config=config, executor_backend=backend, code_cache=cache
                )
                engine.run_source(source)
                cycles += engine.stats.total_cycles
            return time.perf_counter() - start, cycles, cache

        cold_best = None
        cold_cycles = None
        for _ in range(repeats):
            shutil.rmtree(os.path.join(root, "code"), ignore_errors=True)
            elapsed, cycles, _cache = one_pass()
            cold_cycles = cycles
            if cold_best is None or elapsed < cold_best:
                cold_best = elapsed
        warm_best = None
        warm_cycles = None
        disk_hits = 0
        for _ in range(repeats):
            elapsed, cycles, cache = one_pass()
            warm_cycles = cycles
            disk_hits = cache.hits
            if warm_best is None or elapsed < warm_best:
                warm_best = elapsed
        return {
            "workload": "web (page-load generator, %d programs)" % len(programs),
            "backend": backend,
            "cold_seconds": round(cold_best, 4),
            "warm_seconds": round(warm_best, 4),
            "speedup": round(cold_best / warm_best, 4),
            "disk_hits": disk_hits,
            "cycles_identical": cold_cycles == warm_cycles,
        }
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)


#: The fleet profile measured by the serving section: repeat-heavy by
#: construction (power-law tenants and programs), big enough for the
#: percentiles to be meaningful, small enough for CI.
SERVING_PROFILE = {
    "tenants": 6,
    "requests": 160,
    "programs": 5,
    "seed": 20130223,
    "functions_per_program": 8,
}

#: Per-tenant admission capacity for the SLO profile.  The schedule is
#: deliberately bursty (arrival gaps far below service time), so the
#: hot tenant's lane legitimately queues deep; the gate then asserts
#: *zero* rejections at this depth rather than tuning the burst away.
SERVING_QUEUE_CAPACITY = 256


def measure_serving(profile_kwargs=None, shards=4, cache_root=None):
    """The serving-tier SLO section: latency percentiles + warm shards.

    Runs the same power-law fleet schedule twice against one shared
    sharded artifact store: a *cold* pass that populates it, then a
    *warm* pass with fresh isolates that should serve almost entirely
    from it.  All latencies are model cycles on the per-tenant
    admission lanes — deterministic and machine-independent, so the
    p50/p99 gate exactly, like the background and deoptless sections.
    The warm pass's shard hit rate carries the acceptance floor
    (``SERVING_WARM_HIT_FLOOR``); cold and warm passes must agree on
    every latency (the artifact store is a host-time optimization
    only) and must record zero isolation violations.
    """
    from repro.serving.fleet import FleetProfile, run_fleet

    kwargs = dict(SERVING_PROFILE)
    kwargs.update(profile_kwargs or {})
    profile = FleetProfile(**kwargs)
    root = cache_root
    cleanup = False
    if root is None:
        root = tempfile.mkdtemp(prefix="repro-serving-")
        cleanup = True
    try:
        shutil.rmtree(root, ignore_errors=True)
        cold = run_fleet(
            profile,
            cache_mode="shared",
            cache_root=root,
            shards=shards,
            queue_capacity=SERVING_QUEUE_CAPACITY,
        )
        warm = run_fleet(
            profile,
            cache_mode="shared",
            cache_root=root,
            shards=shards,
            queue_capacity=SERVING_QUEUE_CAPACITY,
        )
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "profile": profile.as_dict(),
        "shards": shards,
        "requests": warm["requests"],
        "rejected": warm["rejected"],
        "batches": warm["batches"],
        "tenants": warm["tenants"],
        "p50_latency_cycles": warm["p50_latency_cycles"],
        "p99_latency_cycles": warm["p99_latency_cycles"],
        "total_latency_cycles": warm["total_latency_cycles"],
        "cold_hit_rate": round(cold["warm_hit_rate"], 5),
        "warm_hit_rate": round(warm["warm_hit_rate"], 5),
        "isolation_violations": cold["isolation_violations"]
        + warm["isolation_violations"],
        "cycles_identical": cold["total_latency_cycles"]
        == warm["total_latency_cycles"],
    }


#: The independently runnable parts of the wall-clock protocol.
ALL_SECTIONS = ("backends", "background", "warm-cache", "deoptless", "serving")

#: Minimum acceptable warm-over-cold speedup of the persistent code
#: cache on the web workload (docs/PERF.md); the gate's hard floor.
WARM_CACHE_FLOOR = 1.3

#: Acceptance ceilings for the deoptless dispatch table on the churn
#: suite (docs/DEOPTLESS.md): total model cycles with the table on
#: must be <= 80% of the §4 policy's, and binary discards <= 50%.
DEOPTLESS_CYCLE_CEILING = 0.8
DEOPTLESS_DISCARD_CEILING = 0.5

#: Minimum acceptable warm-pass shard hit rate on the serving
#: section's repeat-heavy fleet profile (docs/SERVING.md): after a
#: cold pass populated the shared store, at least 90% of the warm
#: pass's cacheable compiles must be served from it.
SERVING_WARM_HIT_FLOOR = 0.9


def run_wallclock(
    suites=None,
    repeats=3,
    config=FULL_SPEC,
    backends=DEFAULT_BACKENDS,
    sections=ALL_SECTIONS,
):
    """Run the wall-clock comparison; returns the results dict.

    ``suites`` maps suite name to benchmark list (default: all three
    paper suites).  The returned dict is what ``BENCH_wallclock.json``
    holds::

        {"protocol": {...},
         "suites": {name: {"<backend>_seconds": s, ...,
                           "speedup": simple/closure,
                           "sim_instructions": work,
                           "<backend>_sips": work/s}},
         "geomean_speedup": g,
         "background_compile": {...},   # model cycles, sync vs lane
         "warm_cache": {...},           # cold vs warm disk cache
         "deoptless": {...},            # model cycles, §4 vs table
         "serving": {...}}              # fleet latency SLO + warm shards

    ``sections`` selects which parts run (``tools/perf_gate.py
    --sections``): ``backends`` is the executor comparison,
    ``background`` the lane cycle ratios, ``warm-cache`` the disk
    cache cold/warm timing, ``deoptless`` the churn-suite cycle
    comparison of the §4 discard policy against the specialization
    dispatch table, ``serving`` the multi-tenant fleet latency and
    warm-shard hit-rate SLO (docs/SERVING.md).  Skipped sections are
    absent from the result and skipped by :func:`check_gate`.
    """
    if suites is None:
        suites = ALL_SUITES
    results = {
        "protocol": {
            "config": config.name,
            "repeats": repeats,
            "backends": list(backends),
            "metric": "best-of-repeats wall-clock seconds per full suite pass",
        },
        "suites": {},
    }
    if "backends" in sections:
        speedups = []
        whole_speedups = []
        for name, suite in suites.items():
            row = {}
            for backend in backends:
                measured = measure_suite(suite, backend, config=config, repeats=repeats)
                row["%s_seconds" % backend] = round(measured["seconds"], 4)
                work = measured["native_instructions"] + measured["interp_ops"]
                row["sim_instructions"] = work
                row["%s_sips" % backend] = int(work / measured["seconds"])
            if "simple" in backends and "closure" in backends:
                row["speedup"] = round(
                    row["simple_seconds"] / row["closure_seconds"], 4
                )
                speedups.append(row["speedup"])
            if "closure" in backends and "whole" in backends:
                row["whole_speedup"] = round(
                    row["closure_seconds"] / row["whole_seconds"], 4
                )
                whole_speedups.append(row["whole_speedup"])
            results["suites"][name] = row
        if speedups:
            results["geomean_speedup"] = round(
                math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 4
            )
        if whole_speedups:
            results["geomean_whole_speedup"] = round(
                math.exp(
                    sum(math.log(s) for s in whole_speedups) / len(whole_speedups)
                ),
                4,
            )
    if "background" in sections:
        results["background_compile"] = measure_background_cycles(suites, config=config)
    if "warm-cache" in sections:
        results["warm_cache"] = measure_warm_cache(repeats=repeats, config=config)
    if "deoptless" in sections:
        results["deoptless"] = measure_deoptless_cycles(
            config=config, backends=backends
        )
    if "serving" in sections:
        results["serving"] = measure_serving()
    return results


def format_wallclock(results):
    """Human-readable table for one :func:`run_wallclock` result."""
    lines = []
    if results.get("suites"):
        lines.append(
            "-- executor backend wall clock (config: %s, best of %d) --"
            % (results["protocol"]["config"], results["protocol"]["repeats"])
        )
        lines.append(
            "%-12s %10s %10s %9s %9s %9s"
            % ("suite", "simple s", "closure s", "whole s", "clo/simp", "whole/clo")
        )
        for name, row in results["suites"].items():
            lines.append(
                "%-12s %10.2f %10.2f %9s %8.2fx %8s"
                % (
                    name,
                    row["simple_seconds"],
                    row["closure_seconds"],
                    (
                        "%.2f" % row["whole_seconds"]
                        if "whole_seconds" in row
                        else "-"
                    ),
                    row.get("speedup", float("nan")),
                    (
                        "%.2fx" % row["whole_speedup"]
                        if "whole_speedup" in row
                        else "-"
                    ),
                )
            )
        if "geomean_speedup" in results:
            lines.append("geomean closure/simple: %.2fx" % results["geomean_speedup"])
        if "geomean_whole_speedup" in results:
            lines.append(
                "geomean whole/closure: %.2fx" % results["geomean_whole_speedup"]
            )
    background = results.get("background_compile")
    if background:
        lines.append("")
        lines.append("-- background compilation lane (model cycles, sync vs lane) --")
        lines.append(
            "%-12s %14s %14s %12s"
            % ("suite", "sync cycles", "lane cycles", "cycle ratio")
        )
        for name, row in background["suites"].items():
            lines.append(
                "%-12s %14s %14s %12.5f"
                % (
                    name,
                    "{:,}".format(row["sync_cycles"]),
                    "{:,}".format(row["background_cycles"]),
                    row["cycle_ratio"],
                )
            )
        if "geomean_cycle_ratio" in background:
            lines.append(
                "geomean cycle ratio (background / sync): %.5f"
                % background["geomean_cycle_ratio"]
            )
    warm = results.get("warm_cache")
    if warm:
        lines.append("")
        lines.append("-- persistent code cache (%s) --" % warm["workload"])
        lines.append(
            "cold %.2fs -> warm %.2fs: %.2fx (%d disk hits, cycles identical: %s)"
            % (
                warm["cold_seconds"],
                warm["warm_seconds"],
                warm["speedup"],
                warm["disk_hits"],
                warm["cycles_identical"],
            )
        )
    deoptless = results.get("deoptless")
    if deoptless:
        lines.append("")
        lines.append(
            "-- deoptless dispatch table (churn suite, model cycles, off vs on) --"
        )
        lines.append(
            "%-22s %14s %14s %12s"
            % ("benchmark", "off cycles", "on cycles", "cycle ratio")
        )
        for name, row in deoptless["benchmarks"].items():
            lines.append(
                "%-22s %14s %14s %12.5f"
                % (
                    name,
                    "{:,}".format(row["off_cycles"]),
                    "{:,}".format(row["on_cycles"]),
                    row["cycle_ratio"],
                )
            )
        lines.append(
            "suite cycles %s -> %s (ratio %.5f); discards %d -> %d; "
            "%d reentries, %d misses, %d generalized; outputs identical: %s; "
            "backends identical: %s"
            % (
                "{:,}".format(deoptless["off_cycles"]),
                "{:,}".format(deoptless["on_cycles"]),
                deoptless["cycle_ratio"],
                deoptless["off_invalidations"],
                deoptless["on_invalidations"],
                deoptless["deoptless_reentries"],
                deoptless["deoptless_misses"],
                deoptless["deoptless_generalized_compiles"],
                deoptless["outputs_identical"],
                deoptless["backends_identical"],
            )
        )
    serving = results.get("serving")
    if serving:
        profile = serving["profile"]
        lines.append("")
        lines.append(
            "-- serving tier (fleet of %d tenants, %d requests, model cycles) --"
            % (profile["tenants"], profile["requests"])
        )
        lines.append(
            "latency p50 %s / p99 %s cycles; warm shard hit rate %.3f "
            "(cold %.3f); %d batches, %d rejected, %d isolation violations; "
            "cycles identical cold/warm: %s"
            % (
                "{:,}".format(serving["p50_latency_cycles"]),
                "{:,}".format(serving["p99_latency_cycles"]),
                serving["warm_hit_rate"],
                serving["cold_hit_rate"],
                serving["batches"],
                serving["rejected"],
                serving["isolation_violations"],
                serving["cycles_identical"],
            )
        )
    return "\n".join(lines)


def write_wallclock_json(results, path):
    """Write ``results`` as the checked-in ``BENCH_wallclock.json``."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_wallclock_json(path):
    """Load a results file written by :func:`write_wallclock_json`."""
    with open(path) as handle:
        return json.load(handle)


def check_gate(current, baseline, tolerance=0.15):
    """Compare a fresh run against the checked-in baseline.

    Returns a list of failure strings, empty when the gate passes.
    Only *speedup ratios* are compared — they are machine-independent,
    unlike seconds — and a suite fails when its ratio fell more than
    ``tolerance`` (fractional) below the baseline's.  Suites added
    since the baseline pass trivially; suites missing from the current
    run fail loudly.  A section absent from ``current`` entirely (not
    selected via ``run_wallclock(sections=...)``) is skipped, so the
    gate composes with partial runs like ``perf_gate.py --sections
    warm-cache``.
    """
    failures = []
    if current.get("suites"):
        for name, base_row in baseline.get("suites", {}).items():
            base_speedup = base_row.get("speedup")
            if base_speedup is None:
                continue
            current_row = current.get("suites", {}).get(name)
            if current_row is None or "speedup" not in current_row:
                failures.append("suite %s: present in baseline but not measured" % name)
                continue
            floor = base_speedup * (1.0 - tolerance)
            if current_row["speedup"] < floor:
                failures.append(
                    "suite %s: speedup %.2fx fell below %.2fx "
                    "(baseline %.2fx - %d%% tolerance)"
                    % (
                        name,
                        current_row["speedup"],
                        floor,
                        base_speedup,
                        round(tolerance * 100),
                    )
                )
        for name, base_row in baseline.get("suites", {}).items():
            base_whole = base_row.get("whole_speedup")
            if base_whole is None:
                continue
            current_row = current.get("suites", {}).get(name)
            if current_row is None or "whole_speedup" not in current_row:
                failures.append(
                    "suite %s: whole backend present in baseline but not measured"
                    % name
                )
                continue
            floor = base_whole * (1.0 - tolerance)
            if current_row["whole_speedup"] < floor:
                failures.append(
                    "suite %s: whole/closure speedup %.2fx fell below %.2fx "
                    "(baseline %.2fx - %d%% tolerance)"
                    % (
                        name,
                        current_row["whole_speedup"],
                        floor,
                        base_whole,
                        round(tolerance * 100),
                    )
                )
        base_geo = baseline.get("geomean_speedup")
        cur_geo = current.get("geomean_speedup")
        if base_geo is not None and cur_geo is not None:
            floor = base_geo * (1.0 - tolerance)
            if cur_geo < floor:
                failures.append(
                    "geomean: speedup %.2fx fell below %.2fx (baseline %.2fx)"
                    % (cur_geo, floor, base_geo)
                )
        base_geo = baseline.get("geomean_whole_speedup")
        cur_geo = current.get("geomean_whole_speedup")
        if base_geo is not None and cur_geo is not None:
            floor = base_geo * (1.0 - tolerance)
            if cur_geo < floor:
                failures.append(
                    "geomean: whole/closure speedup %.2fx fell below %.2fx "
                    "(baseline %.2fx)" % (cur_geo, floor, base_geo)
                )
    # Background-lane cycle ratios are model cycles — deterministic and
    # machine-independent — so they gate with a tiny epsilon (benchmark
    # additions shift the geomean slightly), not the wall-clock tolerance.
    base_ratio = baseline.get("background_compile", {}).get("geomean_cycle_ratio")
    cur_ratio = current.get("background_compile", {}).get("geomean_cycle_ratio")
    if "background_compile" in current and base_ratio is not None and cur_ratio is not None:
        ceiling = base_ratio + 0.002
        if cur_ratio > ceiling:
            failures.append(
                "background lane: cycle ratio %.5f rose above %.5f (baseline %.5f)"
                % (cur_ratio, ceiling, base_ratio)
            )
    base_warm = baseline.get("warm_cache", {}).get("speedup")
    cur_warm = current.get("warm_cache", {}).get("speedup")
    if "warm_cache" in current and base_warm is not None:
        if cur_warm is None:
            failures.append("warm cache: present in baseline but not measured")
        else:
            # Cold-run seconds swing with host cache state, so a purely
            # baseline-relative floor flakes.  Gate on the smaller of
            # the relative floor and the documented acceptance floor
            # (WARM_CACHE_FLOOR): noise above the floor passes, while a
            # broken cache (speedup ~1.0x) always fails.
            floor = min(base_warm * (1.0 - tolerance), WARM_CACHE_FLOOR)
            if cur_warm < floor:
                failures.append(
                    "warm cache: speedup %.2fx fell below %.2fx (baseline %.2fx)"
                    % (cur_warm, floor, base_warm)
                )
            if not current.get("warm_cache", {}).get("cycles_identical", True):
                failures.append(
                    "warm cache: simulated cycles differ between cold and warm runs"
                )
    # The deoptless section is model cycles like the background lane:
    # deterministic, so the acceptance ceilings are hard floors, and
    # the baseline comparison uses the same tiny epsilon.
    deoptless = current.get("deoptless")
    if deoptless is not None:
        if deoptless["cycle_ratio"] > DEOPTLESS_CYCLE_CEILING:
            failures.append(
                "deoptless: churn cycle ratio %.5f above the %.2f acceptance ceiling"
                % (deoptless["cycle_ratio"], DEOPTLESS_CYCLE_CEILING)
            )
        if deoptless["invalidation_ratio"] > DEOPTLESS_DISCARD_CEILING:
            failures.append(
                "deoptless: churn discard ratio %.5f above the %.2f acceptance ceiling"
                % (deoptless["invalidation_ratio"], DEOPTLESS_DISCARD_CEILING)
            )
        if not deoptless.get("outputs_identical", True):
            failures.append(
                "deoptless: guest output differs between table off and on"
            )
        if not deoptless.get("backends_identical", True):
            failures.append(
                "deoptless: executor backends disagree with the table on"
            )
        base_ratio = baseline.get("deoptless", {}).get("cycle_ratio")
        if base_ratio is not None and deoptless["cycle_ratio"] > base_ratio + 0.002:
            failures.append(
                "deoptless: churn cycle ratio %.5f rose above %.5f (baseline %.5f)"
                % (deoptless["cycle_ratio"], base_ratio + 0.002, base_ratio)
            )
    # The serving section is model cycles throughout: the latency
    # percentiles gate exactly against the baseline, and the warm-shard
    # hit rate and isolation invariants carry hard acceptance floors.
    serving = current.get("serving")
    if serving is not None:
        if serving["warm_hit_rate"] < SERVING_WARM_HIT_FLOOR:
            failures.append(
                "serving: warm shard hit rate %.3f below the %.2f acceptance floor"
                % (serving["warm_hit_rate"], SERVING_WARM_HIT_FLOOR)
            )
        if serving.get("isolation_violations", 0):
            failures.append(
                "serving: %d tenant-isolation violations detected"
                % serving["isolation_violations"]
            )
        if not serving.get("cycles_identical", True):
            failures.append(
                "serving: request cycles differ between cold and warm passes"
            )
        if serving.get("rejected", 0):
            failures.append(
                "serving: %d requests rejected on the SLO profile"
                % serving["rejected"]
            )
        base_serving = baseline.get("serving", {})
        for metric in ("p50_latency_cycles", "p99_latency_cycles"):
            base_value = base_serving.get(metric)
            if base_value is not None and serving[metric] > base_value:
                failures.append(
                    "serving: %s %s rose above the baseline's %s"
                    % (
                        metric,
                        "{:,}".format(serving[metric]),
                        "{:,}".format(base_value),
                    )
                )
    return failures
