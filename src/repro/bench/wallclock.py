"""Wall-clock comparison of executor backends (host-level benching).

Everything else in :mod:`repro.bench` measures *model* cycles — the
deterministic currency of the paper's figures, identical on every
machine.  This module instead measures real seconds: it exists to
prove that the closure-compiled backend (``repro.lir.closures``)
actually buys host performance over the reference decode loop, and to
keep that proof from regressing.

Protocol: each suite is run end-to-end (compilation, interpretation
and native execution included — the honest cost of the engine) under
each backend, best-of-``repeats`` wall-clock seconds.  The headline
metric is the per-suite **speedup** ``simple_seconds /
closure_seconds`` and its geometric mean.  Speedups are ratios of two
measurements taken on the same machine moments apart, so they are
comparable across hosts — which is what lets ``tools/perf_gate.py``
gate on a checked-in baseline (``BENCH_wallclock.json``) with a
tolerance, instead of gating on absolute seconds.
"""

import json
import math
import time

from repro.engine.config import FULL_SPEC
from repro.engine.runtime_engine import Engine
from repro.workloads import ALL_SUITES

#: Backends compared by default: the reference decode loop vs the
#: closure-compiled blocks.
DEFAULT_BACKENDS = ("simple", "closure")


def measure_suite(suite, backend, config=FULL_SPEC, repeats=3):
    """Time one full pass of ``suite`` under ``backend``.

    Returns ``{"seconds", "native_instructions", "interp_ops"}`` with
    best-of-``repeats`` seconds (the standard way to strip scheduler
    noise from a deterministic workload) and the per-pass simulated
    work counters, which are backend-invariant and let reports quote
    simulated instructions per host second.
    """
    best = None
    native_instructions = 0
    interp_ops = 0
    for _ in range(repeats):
        native_instructions = 0
        interp_ops = 0
        start = time.perf_counter()
        for benchmark in suite:
            engine = Engine(config=config, executor_backend=backend)
            engine.run_source(benchmark.source)
            native_instructions += engine.executor.instructions_executed
            interp_ops += engine.interpreter.ops_executed
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return {
        "seconds": best,
        "native_instructions": native_instructions,
        "interp_ops": interp_ops,
    }


def run_wallclock(suites=None, repeats=3, config=FULL_SPEC, backends=DEFAULT_BACKENDS):
    """Run the wall-clock comparison; returns the results dict.

    ``suites`` maps suite name to benchmark list (default: all three
    paper suites).  The returned dict is what ``BENCH_wallclock.json``
    holds::

        {"protocol": {...},
         "suites": {name: {"<backend>_seconds": s, ...,
                           "speedup": simple/closure,
                           "sim_instructions": work,
                           "<backend>_sips": work/s}},
         "geomean_speedup": g}
    """
    if suites is None:
        suites = ALL_SUITES
    results = {
        "protocol": {
            "config": config.name,
            "repeats": repeats,
            "backends": list(backends),
            "metric": "best-of-repeats wall-clock seconds per full suite pass",
        },
        "suites": {},
    }
    speedups = []
    for name, suite in suites.items():
        row = {}
        for backend in backends:
            measured = measure_suite(suite, backend, config=config, repeats=repeats)
            row["%s_seconds" % backend] = round(measured["seconds"], 4)
            work = measured["native_instructions"] + measured["interp_ops"]
            row["sim_instructions"] = work
            row["%s_sips" % backend] = int(work / measured["seconds"])
        if "simple" in backends and "closure" in backends:
            row["speedup"] = round(
                row["simple_seconds"] / row["closure_seconds"], 4
            )
            speedups.append(row["speedup"])
        results["suites"][name] = row
    if speedups:
        results["geomean_speedup"] = round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 4
        )
    return results


def format_wallclock(results):
    """Human-readable table for one :func:`run_wallclock` result."""
    lines = []
    lines.append(
        "-- executor backend wall clock (config: %s, best of %d) --"
        % (results["protocol"]["config"], results["protocol"]["repeats"])
    )
    lines.append(
        "%-12s %10s %10s %9s %14s" % ("suite", "simple s", "closure s", "speedup", "closure sips")
    )
    for name, row in results["suites"].items():
        lines.append(
            "%-12s %10.2f %10.2f %8.2fx %14s"
            % (
                name,
                row["simple_seconds"],
                row["closure_seconds"],
                row.get("speedup", float("nan")),
                "{:,}".format(row["closure_sips"]),
            )
        )
    if "geomean_speedup" in results:
        lines.append("geomean speedup: %.2fx" % results["geomean_speedup"])
    return "\n".join(lines)


def write_wallclock_json(results, path):
    """Write ``results`` as the checked-in ``BENCH_wallclock.json``."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_wallclock_json(path):
    """Load a results file written by :func:`write_wallclock_json`."""
    with open(path) as handle:
        return json.load(handle)


def check_gate(current, baseline, tolerance=0.15):
    """Compare a fresh run against the checked-in baseline.

    Returns a list of failure strings, empty when the gate passes.
    Only *speedup ratios* are compared — they are machine-independent,
    unlike seconds — and a suite fails when its ratio fell more than
    ``tolerance`` (fractional) below the baseline's.  Suites added
    since the baseline pass trivially; suites missing from the current
    run fail loudly.
    """
    failures = []
    for name, base_row in baseline.get("suites", {}).items():
        base_speedup = base_row.get("speedup")
        if base_speedup is None:
            continue
        current_row = current.get("suites", {}).get(name)
        if current_row is None or "speedup" not in current_row:
            failures.append("suite %s: present in baseline but not measured" % name)
            continue
        floor = base_speedup * (1.0 - tolerance)
        if current_row["speedup"] < floor:
            failures.append(
                "suite %s: speedup %.2fx fell below %.2fx "
                "(baseline %.2fx - %d%% tolerance)"
                % (
                    name,
                    current_row["speedup"],
                    floor,
                    base_speedup,
                    round(tolerance * 100),
                )
            )
    base_geo = baseline.get("geomean_speedup")
    cur_geo = current.get("geomean_speedup")
    if base_geo is not None and cur_geo is not None:
        floor = base_geo * (1.0 - tolerance)
        if cur_geo < floor:
            failures.append(
                "geomean: speedup %.2fx fell below %.2fx (baseline %.2fx)"
                % (cur_geo, floor, base_geo)
            )
    return failures
