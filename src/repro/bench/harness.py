"""Figure 9 harness: run suites under optimization configurations.

"Runtime" follows the paper: interpretation + compilation + native
execution, here in deterministic model cycles.  Speedups are reported
against the IonMonkey baseline (type specialization + GVN + LICM, none
of §3), as both arithmetic and geometric means across each suite's
benchmarks — the paper's Figure 9 (a,b).  Compilation overhead uses
compile cycles only — Figure 9 (c,d).
"""

import math

from repro.engine.config import BASELINE, PAPER_CONFIGS
from repro.engine.runtime_engine import Engine
from repro.telemetry.tracing import Tracer


class BenchmarkRun(object):
    """Measurements from one benchmark under one configuration."""

    __slots__ = (
        "benchmark",
        "config",
        "total_cycles",
        "compile_cycles",
        "output",
        "summary",
        "code_sizes",
        "function_names",
        "compiles_per_function",
        "specialized",
        "successful",
        "deoptimized",
        "trace_events",
        "profile",
        "metrics",
    )

    def __init__(
        self, benchmark, config, engine, output, tracer=None, profiler=None, metrics=None
    ):
        stats = engine.stats
        self.benchmark = benchmark.name
        self.config = config.name
        self.total_cycles = stats.total_cycles
        self.compile_cycles = stats.compile_cycles
        self.output = list(output)
        self.summary = stats.summary()
        self.code_sizes = dict(stats.code_sizes)
        self.function_names = dict(stats.function_names)
        self.compiles_per_function = dict(stats.compiles_per_function)
        self.specialized = set(stats.specialized_functions)
        self.successful = set(stats.successfully_specialized)
        self.deoptimized = set(stats.deoptimized_functions)
        #: JIT event stream (docs/TRACING.md) when the run was traced.
        self.trace_events = list(tracer.events) if tracer is not None else None
        #: The run's CycleProfiler (docs/PROFILING.md) when profiled.
        self.profile = profiler
        #: Finalized metrics payload (docs/METRICS.md) when collected —
        #: a plain JSON-safe dict, so it pickles across ``--jobs``
        #: worker processes and merges exactly with
        #: ``repro.telemetry.metrics.merge_payloads``.
        self.metrics = metrics.as_dict() if metrics is not None else None


def run_benchmark(
    benchmark,
    config,
    engine_kwargs=None,
    trace=False,
    trace_channels=None,
    profile=False,
    collect_metrics=False,
    metrics_interval=0,
):
    """Run one benchmark under one configuration; returns BenchmarkRun.

    With ``trace``, the engine runs with a fresh event tracer
    (optionally narrowed to ``trace_channels``) and the returned run
    carries the event stream in ``trace_events`` — any Figure 9
    configuration can be traced this way.  With ``profile``, it runs
    with a fresh cycle-exact profiler (docs/PROFILING.md), returned in
    ``run.profile``.  With ``collect_metrics``, it runs with a fresh
    metrics registry (docs/METRICS.md; ``metrics_interval`` > 0 adds
    periodic cycle-driven snapshots) and the finalized payload dict is
    returned in ``run.metrics``.  None of these flags perturbs any
    measured number.
    """
    tracer = Tracer(channels=trace_channels) if trace else None
    profiler = None
    if profile:
        from repro.telemetry.profiler import CycleProfiler

        profiler = CycleProfiler()
    metrics = None
    if collect_metrics:
        from repro.telemetry.metrics import MetricsRegistry

        metrics = MetricsRegistry(snapshot_interval=metrics_interval)
    engine = Engine(
        config=config,
        tracer=tracer,
        cycle_profiler=profiler,
        metrics=metrics,
        **(engine_kwargs or {})
    )
    output = engine.run_source(benchmark.source)
    return BenchmarkRun(
        benchmark,
        config,
        engine,
        output,
        tracer=tracer,
        profiler=profiler,
        metrics=metrics,
    )


def _run_benchmark_job(job):
    """Module-level worker for ``jobs > 1`` (must be picklable).

    Takes the ``run_benchmark`` arguments as one tuple so it can ride
    through ``multiprocessing.Pool.map``; each worker process runs the
    deterministic engine, so the returned measurements are identical
    to a serial run — parallelism is purely a wall-clock optimization.
    """
    benchmark, config, engine_kwargs, trace, trace_channels, collect_metrics = job
    return run_benchmark(
        benchmark,
        config,
        engine_kwargs,
        trace=trace,
        trace_channels=trace_channels,
        collect_metrics=collect_metrics,
    )


class SweepResult(object):
    """All runs of one suite across configurations."""

    def __init__(self, suite_name):
        self.suite_name = suite_name
        #: {config name: {benchmark name: BenchmarkRun}}
        self.runs = {}

    def add(self, run):
        self.runs.setdefault(run.config, {})[run.benchmark] = run

    def benchmarks(self):
        return sorted(self.runs.get("baseline", {}))

    def run_for(self, config_name, benchmark_name):
        return self.runs[config_name][benchmark_name]


def run_suite_sweep(
    suite_name,
    suite,
    configs=None,
    engine_kwargs=None,
    verify=True,
    trace=False,
    trace_channels=None,
    jobs=1,
    collect_metrics=False,
):
    """Run every benchmark under baseline + every configuration.

    With ``verify``, every configuration's printed output must equal
    the baseline's (the correctness oracle built into the harness).
    With ``trace``, every run records its JIT event stream on
    ``BenchmarkRun.trace_events``.  With ``collect_metrics``, every
    run carries its metrics payload in ``run.metrics`` (fold them
    into one fleet view with ``merge_payloads``).  ``jobs > 1`` fans
    the runs out across worker processes (``repro bench --jobs N``);
    because every run is deterministic this changes wall-clock time
    only — results, ordering, verification and metrics are identical
    to a serial sweep.
    """
    configs = configs if configs is not None else PAPER_CONFIGS
    sweep = SweepResult(suite_name)
    pending = [
        (benchmark, BASELINE, engine_kwargs, trace, trace_channels, collect_metrics)
        for benchmark in suite
    ]
    for config in configs:
        pending.extend(
            (benchmark, config, engine_kwargs, trace, trace_channels, collect_metrics)
            for benchmark in suite
        )
    if jobs > 1:
        from multiprocessing import Pool

        with Pool(jobs) as pool:
            runs = pool.map(_run_benchmark_job, pending)
    else:
        runs = [_run_benchmark_job(job) for job in pending]
    baseline_runs = {}
    for run in runs[: len(suite)]:
        baseline_runs[run.benchmark] = run
        sweep.add(run)
    for run in runs[len(suite) :]:
        if verify and run.output != baseline_runs[run.benchmark].output:
            raise AssertionError(
                "%s under %s printed %r, baseline printed %r"
                % (run.benchmark, run.config, run.output, baseline_runs[run.benchmark].output)
            )
        sweep.add(run)
    return sweep


# -- aggregation --------------------------------------------------------------


def _percent_speedups(sweep, config_name, metric):
    """Per-benchmark percent improvements of ``config`` vs baseline."""
    speedups = []
    for name in sweep.benchmarks():
        base = getattr(sweep.run_for("baseline", name), metric)
        this = getattr(sweep.run_for(config_name, name), metric)
        if base <= 0:
            continue
        speedups.append(100.0 * (base - this) / base)
    return speedups


def arithmetic_mean(values):
    """Plain average; 0.0 for an empty list."""
    return sum(values) / len(values) if values else 0.0


def geometric_mean_percent(values):
    """Geometric mean of improvement ratios, expressed as a percent.

    Each percent p is a ratio base/new = 1/(1 - p/100); the geometric
    mean of the ratios converts back to a percent.
    """
    if not values:
        return 0.0
    log_sum = 0.0
    for percent in values:
        ratio = 1.0 / max(1e-9, (1.0 - percent / 100.0))
        log_sum += math.log(ratio)
    mean_ratio = math.exp(log_sum / len(values))
    return 100.0 * (1.0 - 1.0 / mean_ratio)


def speedup_rows(sweep, configs=None, metric="total_cycles"):
    """Figure 9 rows: {config name: (arith %, geo %, per-benchmark)}"""
    configs = configs if configs is not None else PAPER_CONFIGS
    rows = {}
    for config in configs:
        per_benchmark = _percent_speedups(sweep, config.name, metric)
        rows[config.name] = (
            arithmetic_mean(per_benchmark),
            geometric_mean_percent(per_benchmark),
            per_benchmark,
        )
    return rows


def format_figure9(sweeps, configs=None, metric="total_cycles", title="runtime speedup"):
    """Render the Figure 9 table: suites as rows, configs as columns."""
    configs = configs if configs is not None else PAPER_CONFIGS
    names = [config.name for config in configs]
    lines = []
    lines.append("-- Overall %s (%% arithmetic mean) --" % title)
    header = "%-14s" % "suite" + "".join("%12s" % n for n in names)
    lines.append(header)
    all_rows = {}
    for sweep in sweeps:
        rows = speedup_rows(sweep, configs, metric)
        all_rows[sweep.suite_name] = rows
        lines.append(
            "%-14s" % sweep.suite_name
            + "".join("%12.2f" % rows[n][0] for n in names)
        )
    lines.append("-- Overall %s (%% geometric mean) --" % title)
    lines.append(header)
    for sweep in sweeps:
        rows = all_rows[sweep.suite_name]
        lines.append(
            "%-14s" % sweep.suite_name
            + "".join("%12.2f" % rows[n][1] for n in names)
        )
    return "\n".join(lines)
