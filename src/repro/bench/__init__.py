"""Benchmark harness: regenerates every table and figure of the paper.

:mod:`repro.bench.harness` runs suites under optimization
configurations and aggregates the Figure 9 tables;
:mod:`repro.bench.figures` regenerates the Section 2 histograms and the
Figure 10 code-size study.  The runnable entry points live in the
repository's ``benchmarks/`` directory.
"""

from repro.bench.harness import (
    BenchmarkRun,
    SweepResult,
    run_benchmark,
    run_suite_sweep,
    speedup_rows,
    format_figure9,
)
from repro.bench.figures import (
    web_histograms,
    suite_histograms,
    parameter_types,
    code_size_study,
    policy_stats,
    recompilation_stats,
)

__all__ = [
    "BenchmarkRun",
    "SweepResult",
    "run_benchmark",
    "run_suite_sweep",
    "speedup_rows",
    "format_figure9",
    "web_histograms",
    "suite_histograms",
    "parameter_types",
    "code_size_study",
    "policy_stats",
    "recompilation_stats",
]
