"""Benchmark harness: regenerates every table and figure of the paper.

:mod:`repro.bench.harness` runs suites under optimization
configurations and aggregates the Figure 9 tables;
:mod:`repro.bench.figures` regenerates the Section 2 histograms and the
Figure 10 code-size study; :mod:`repro.bench.wallclock` measures host
wall-clock seconds of the executor backends and feeds the perf gate
(``tools/perf_gate.py``).  The runnable entry points live in the
repository's ``benchmarks/`` directory.
"""

from repro.bench.harness import (
    BenchmarkRun,
    SweepResult,
    run_benchmark,
    run_suite_sweep,
    speedup_rows,
    format_figure9,
)
from repro.bench.figures import (
    web_histograms,
    suite_histograms,
    parameter_types,
    code_size_study,
    policy_stats,
    recompilation_stats,
)
from repro.bench.wallclock import (
    check_gate,
    format_wallclock,
    load_wallclock_json,
    run_wallclock,
    write_wallclock_json,
)

__all__ = [
    "check_gate",
    "format_wallclock",
    "load_wallclock_json",
    "run_wallclock",
    "write_wallclock_json",
    "BenchmarkRun",
    "SweepResult",
    "run_benchmark",
    "run_suite_sweep",
    "speedup_rows",
    "format_figure9",
    "web_histograms",
    "suite_histograms",
    "parameter_types",
    "code_size_study",
    "policy_stats",
    "recompilation_stats",
]
