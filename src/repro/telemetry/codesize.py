"""Code-size comparison (paper Figure 10 and the §4 web-page study).

The paper compares, per function, the *smallest* native binary each
compilation mode produced (recompilations can produce several), then
reports the average relative reduction.  :class:`CodeSizeReport` takes
two finished engines (baseline and specialized) and produces exactly
that series.
"""


class CodeSizeReport(object):
    """Per-function native sizes of two engine runs over one program."""

    def __init__(self, baseline_engine, specialized_engine):
        self.baseline_sizes = dict(baseline_engine.stats.code_sizes)
        self.specialized_sizes = dict(specialized_engine.stats.code_sizes)
        self.names = dict(baseline_engine.stats.function_names)
        self.names.update(specialized_engine.stats.function_names)

    @classmethod
    def from_size_maps(cls, baseline_sizes, specialized_sizes, names):
        """Build a report from pre-aggregated per-function size maps.

        Used when functions are matched by (benchmark, name) across
        separately compiled programs rather than by code id within one
        engine (the whole-suite Figure 10 study).
        """
        report = cls.__new__(cls)
        report.baseline_sizes = dict(baseline_sizes)
        report.specialized_sizes = dict(specialized_sizes)
        report.names = dict(names)
        return report

    def common_functions(self):
        """code_ids compiled by both modes, ordered by baseline size."""
        common = set(self.baseline_sizes) & set(self.specialized_sizes)
        return sorted(common, key=lambda cid: self.baseline_sizes[cid])

    def series(self):
        """[(name, baseline_size, specialized_size)] — the Figure 10
        X axis is the function index in baseline-size order."""
        return [
            (
                self.names.get(cid, "?"),
                self.baseline_sizes[cid],
                self.specialized_sizes[cid],
            )
            for cid in self.common_functions()
        ]

    def average_reduction(self):
        """Mean per-function relative size reduction, as a fraction.

        Positive = specialized code is smaller (the paper reports
        16.72% for SunSpider, 18.84% for V8, 15.94% for Kraken).
        """
        rows = self.series()
        if not rows:
            return 0.0
        reductions = [
            (base - spec) / float(base) for _name, base, spec in rows if base > 0
        ]
        if not reductions:
            return 0.0
        return sum(reductions) / len(reductions)
