"""Structured JIT event tracing (the engine's "spew" channel system).

IonMonkey ships a set of named spew channels (``IONFLAGS=logs,bailouts``)
because aggregate counters cannot answer *why* questions: why was this
specialization discarded, which pass deleted which guards, where did the
deoptimization storm come from.  This module is that observability layer
for the reproduction: a structured event tracer whose records carry the
engine's deterministic cycle clock as their timestamp, so a trace is
exactly reproducible run over run.

Design rules:

* **Zero overhead when disabled.**  The engine holds ``tracer = None``
  by default and every instrumentation site is guarded by a single
  ``is not None`` check; nothing in this module ever touches the cycle
  cost model, so enabling tracing cannot change any measured number.
* **Named channels.**  Events belong to one of the channels in
  :data:`CHANNELS` (``compile``, ``specialize``, ``deopt``,
  ``deoptless``, ``bailout``, ``cache``, ``osr``, ``pass``,
  ``interp``, ``ic``, ``shape``, ``profile``, ``fuzz``); a tracer can
  subscribe to any subset.
* **Typed events.**  Every ``channel.event`` pair and its field names
  are declared in :data:`EVENT_SCHEMA`; :meth:`Tracer.emit` rejects
  undeclared events and undeclared fields, and the documentation test
  checks ``docs/TRACING.md`` against the same registry, so the docs
  cannot silently rot.

Three exporters turn the event list into artifacts:

* :func:`to_jsonl` — one JSON object per line, the machine format;
* :func:`format_timeline` — a human-readable per-function timeline;
* :func:`to_chrome_trace` — Chrome ``trace_event`` JSON loadable in
  ``chrome://tracing`` / Perfetto, mapping one model cycle to one
  microsecond.

See ``docs/TRACING.md`` for the full schema with worked examples.
"""

import json

#: Every ``channel.event`` pair the engine may emit, with the complete
#: set of field names each may carry (beyond the common ``ch`` /
#: ``event`` / ``ts`` / ``seq``).  This registry is the single source
#: of truth: ``Tracer.emit`` validates against it and the docs test
#: checks ``docs/TRACING.md`` covers exactly these names.
EVENT_SCHEMA = {
    "compile": {
        "start": ("fn", "code_id", "reason", "attempt_specialize", "generic"),
        "finish": (
            "fn",
            "code_id",
            "specialized",
            "osr",
            "mir_instructions",
            "lir_instructions",
            "native_size",
            "intervals",
            "spills",
            "cycles",
        ),
        "reject": ("fn", "code_id"),
        "enqueue": ("fn", "code_id", "reason"),
        "install": ("fn", "code_id", "ready_at", "waited_cycles", "specialized"),
        "queue_depth": ("fn", "code_id", "action", "depth"),
    },
    "specialize": {
        "specialized": ("fn", "code_id", "key", "args", "osr"),
        "generic": ("fn", "code_id", "never_specialize", "force_generic"),
    },
    "deopt": {
        "discard": ("fn", "code_id", "reason", "dropped"),
        "force_generic": ("fn", "code_id", "bailouts"),
        "retrain_noop": ("fn", "code_id", "resume_pc", "shape"),
    },
    "deoptless": {
        "dispatch": ("fn", "code_id", "kind", "osr_pc", "misses"),
        "miss": ("fn", "code_id", "reason", "misses"),
        "generalize": ("fn", "code_id", "osr", "osr_pc", "misses"),
    },
    "bailout": {
        "guard": (
            "fn",
            "code_id",
            "reason",
            "guard_op",
            "resume_pc",
            "resume_mode",
            "resume_point",
            "native_index",
            "count",
        ),
    },
    "cache": {
        "hit": ("fn", "code_id", "key", "primary"),
        "miss": ("fn", "code_id", "key", "entries"),
        "store": ("fn", "code_id", "key", "entries"),
        "disk_hit": ("fn", "code_id", "key"),
    },
    "osr": {
        "trip": ("fn", "code_id", "backedges", "target_pc"),
        "enter": ("fn", "code_id", "osr_pc", "backedges"),
    },
    "pass": {
        "run": (
            "fn",
            "name",
            "instructions_before",
            "instructions_after",
            "guards_before",
            "guards_after",
            "units",
            "result",
        ),
    },
    "interp": {
        "call": ("fn", "code_id", "nargs"),
        "hot_call": ("fn", "code_id", "calls"),
    },
    "ic": {
        "hit": ("fn", "code_id", "pc", "name", "shape", "state"),
        "miss": ("fn", "code_id", "pc", "name", "shape", "state"),
        "transition": ("fn", "code_id", "pc", "name", "shape", "state"),
    },
    "shape": {
        "guard": ("fn", "code_id", "reason", "resume_pc", "native_index", "count"),
    },
    "profile": {
        "summary": (
            "functions",
            "binaries",
            "attributed_cycles",
            "total_cycles",
            "guard_failures",
        ),
    },
    "fuzz": {
        "inject": ("fn", "code_id", "native_index", "guard_op"),
        "run": ("seed", "iteration", "lines", "variants"),
        "mismatch": ("seed", "iteration", "kind", "variant", "detail"),
        "shrink": ("seed", "iteration", "from_lines", "to_lines", "steps"),
    },
}

#: The channel names, in documentation order.
CHANNELS = tuple(EVENT_SCHEMA)

#: Fields present on every event, set by the tracer itself.
COMMON_FIELDS = ("ch", "event", "ts", "seq")


def _zero_clock():
    """Default clock for a tracer not yet bound to an engine."""
    return 0


def _jsonable(value):
    """Coerce ``value`` to something ``json.dumps`` accepts.

    Event payloads are primitives by construction; tuples (pass
    results) become lists, anything exotic becomes its ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class Tracer(object):
    """Collects typed JIT events on a subset of :data:`CHANNELS`.

    ``channels=None`` subscribes to everything; pass an iterable of
    channel names to narrow it (an empty iterable yields a tracer that
    records nothing).  The clock is bound by the engine via
    :meth:`bind_clock`; unbound tracers stamp every event ``ts=0``.
    """

    def __init__(self, channels=None, clock=None):
        if channels is None:
            enabled = frozenset(CHANNELS)
        else:
            enabled = frozenset(channels)
            unknown = enabled - frozenset(CHANNELS)
            if unknown:
                raise ValueError(
                    "unknown trace channels %s; available: %s"
                    % (sorted(unknown), ", ".join(CHANNELS))
                )
        self.enabled = enabled
        self.events = []
        self._clock = clock if clock is not None else _zero_clock
        self._seq = 0

    def bind_clock(self, clock):
        """Use ``clock`` (a 0-arg callable) for event timestamps."""
        self._clock = clock

    def wants(self, channel):
        """True when ``channel`` is subscribed (callers can skip
        building expensive payloads otherwise)."""
        return channel in self.enabled

    def emit(self, channel, event, **fields):
        """Record one event; a no-op for unsubscribed channels.

        Raises ``ValueError`` for a channel/event/field combination not
        declared in :data:`EVENT_SCHEMA` — instrumentation sites and
        the documented schema cannot drift apart.
        """
        events = EVENT_SCHEMA.get(channel)
        if events is None:
            raise ValueError("unknown trace channel %r" % channel)
        if channel not in self.enabled:
            return
        allowed = events.get(event)
        if allowed is None:
            raise ValueError("unknown event %r on channel %r" % (event, channel))
        unknown = set(fields) - set(allowed)
        if unknown:
            raise ValueError(
                "undeclared fields %s for %s.%s" % (sorted(unknown), channel, event)
            )
        record = {"ch": channel, "event": event, "ts": self._clock(), "seq": self._seq}
        self._seq += 1
        for key, value in fields.items():
            record[key] = _jsonable(value)
        self.events.append(record)

    def clear(self):
        """Drop all recorded events (the sequence counter keeps going)."""
        del self.events[:]

    def __len__(self):
        return len(self.events)


# -- exporters ----------------------------------------------------------------


def to_jsonl(events):
    """Render events as JSON Lines (one event object per line)."""
    return "\n".join(json.dumps(event, sort_keys=False) for event in events)


def write_jsonl(events, path):
    """Write :func:`to_jsonl` output to ``path``."""
    with open(path, "w") as handle:
        text = to_jsonl(events)
        if text:
            handle.write(text + "\n")


def format_timeline(events, limit=None):
    """Human-readable per-function timeline.

    Events are grouped by function (in order of first appearance) and
    listed in emission order with their cycle timestamp; ``limit``
    truncates each function's listing.
    """
    by_fn = {}
    order = []
    for event in events:
        fn = event.get("fn", "(engine)")
        if fn not in by_fn:
            by_fn[fn] = []
            order.append(fn)
        by_fn[fn].append(event)
    lines = []
    for fn in order:
        group = by_fn[fn]
        lines.append("== %s (%d events) ==" % (fn, len(group)))
        shown = group if limit is None else group[:limit]
        for event in shown:
            detail = " ".join(
                "%s=%s" % (key, value)
                for key, value in event.items()
                if key not in COMMON_FIELDS and key != "fn"
            )
            lines.append(
                "  [%12d] %-20s %s"
                % (event["ts"], "%s.%s" % (event["ch"], event["event"]), detail)
            )
        if limit is not None and len(group) > limit:
            lines.append("  ... %d more" % (len(group) - limit))
    return "\n".join(lines)


def to_chrome_trace(events):
    """Convert events to Chrome ``trace_event`` format.

    The result loads in ``chrome://tracing`` and Perfetto.  One model
    cycle maps to one microsecond of trace time (``ts`` is in µs by the
    format's definition).  Each guest function gets its own "thread"
    row; ``compile.start``/``finish`` pairs become complete ("X") spans
    whose duration is the compilation's cycle cost, every other event
    becomes a thread-scoped instant ("i") marker.
    """
    tids = {}
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro JIT engine"},
        }
    ]

    def tid_for(fn):
        tid = tids.get(fn)
        if tid is None:
            tid = len(tids) + 1
            tids[fn] = tid
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": fn},
                }
            )
        return tid

    trace = []
    open_compiles = {}
    for event in events:
        fn = event.get("fn", "(engine)")
        tid = tid_for(fn)
        args = {
            key: value
            for key, value in event.items()
            if key not in COMMON_FIELDS and key != "fn"
        }
        channel = event["ch"]
        name = "%s.%s" % (channel, event["event"])
        if channel == "compile" and event["event"] == "start":
            open_compiles.setdefault(event.get("code_id"), []).append((event, tid))
            continue
        if channel == "compile" and event["event"] in ("finish", "reject"):
            stack = open_compiles.get(event.get("code_id"))
            if stack:
                start, start_tid = stack.pop()
                merged = {
                    key: value
                    for key, value in start.items()
                    if key not in COMMON_FIELDS and key != "fn"
                }
                merged.update(args)
                trace.append(
                    {
                        "name": "compile %s" % fn,
                        "cat": "compile",
                        "ph": "X",
                        "ts": start["ts"],
                        "dur": max(0, event["ts"] - start["ts"]),
                        "pid": 1,
                        "tid": start_tid,
                        "args": merged,
                    }
                )
                continue
        trace.append(
            {
                "name": name,
                "cat": channel,
                "ph": "i",
                "s": "t",
                "ts": event["ts"],
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    # A compile.start with no matching finish (NotCompilable raised out
    # of band) degrades to an instant so nothing is silently dropped.
    for stack in open_compiles.values():
        for start, tid in stack:
            trace.append(
                {
                    "name": "compile.start",
                    "cat": "compile",
                    "ph": "i",
                    "s": "t",
                    "ts": start["ts"],
                    "pid": 1,
                    "tid": tid,
                    "args": {
                        key: value
                        for key, value in start.items()
                        if key not in COMMON_FIELDS and key != "fn"
                    },
                }
            )
    trace.sort(key=lambda entry: entry["ts"])
    return {
        "traceEvents": metadata + trace,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "model cycles (1 cycle = 1 us)"},
    }


def write_chrome_trace(events, path):
    """Write :func:`to_chrome_trace` output as JSON to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events), handle, indent=1)
        handle.write("\n")
