"""Cycle-exact profiling: where every cycle of ``total_cycles`` went.

The tracer (:mod:`repro.telemetry.tracing`) answers *when* JIT events
happened; :class:`EngineStats` answers *how many* cycles a run cost.
This module answers *where the cycles went*: it attributes every cycle
of ``EngineStats.total_cycles`` to a ``(function, tier, block)``
triple —

* **interp** — bytecode dispatch and interpreted-call setup, charged
  per :class:`~repro.jsvm.bytecode.CodeObject` by the interpreter's
  profiled dispatch loop;
* **native** — simulated native execution, charged per basic block of
  each compiled binary.  The closure backend's block-granular counters
  make this exact by construction; the reference executor counts per
  instruction and aggregates to the same blocks, so both backends
  produce identical attributions;
* **compile** / **bailout** / **invalidate** — the engine's transition
  costs, charged per code id at the same sites that feed the stats
  ledger.

On top of the flat attribution the profiler keeps a **shadow call
tree**: one :class:`ProfileNode` per distinct guest call path, pushed
and popped on the interpreter's call boundaries.  Self cycles live on
the node where they were charged; inclusive cycles and collapsed-stack
(flamegraph) output fall out of a tree walk
(:mod:`repro.telemetry.reports`).

Per compiled binary the profiler also keeps **guard forensics**: each
bailout is recorded against the faulting native instruction with its
guard op, failure reason, and resume-point (MIR/LIR snapshot) id — the
table that identifies a deoptimization storm's exact guard site.

Design rules (shared with the tracer):

* **Zero cost when disabled.**  The engine holds
  ``cycle_profiler = None`` by default; every instrumentation site is
  a single ``is not None`` check, and the interpreter/executors only
  switch to their instrumented loops when a profiler is attached.
* **No perturbation.**  The profiler never touches the cost model or
  any counter the engine reads; enabling it leaves ``EngineStats``,
  printed output and trace streams bit-identical
  (``tests/test_profiler.py`` proves it differentially).
* **Exactness.**  ``attributed_cycles()`` and the row sum of
  :meth:`CycleProfiler.attribution` both equal
  ``EngineStats.total_cycles`` — to the cycle, on every benchmark
  suite, under both executor backends.

See ``docs/PROFILING.md`` for a worked walkthrough.
"""

from repro.lir.closures import _TERMINATORS, _block_leaders

#: Attribution tier names, in reporting order.  These are the *main
#: lane* tiers: their cycles sum to ``EngineStats.total_cycles``.
TIERS = ("interp", "native", "compile", "bailout", "invalidate")

#: Tier label for background-compilation work (docs/COMPILE_PIPELINE.md).
#: Lane cycles are attributed per function like ``compile`` cycles but
#: kept out of every main-lane sum: ``attributed_cycles()`` still
#: equals ``total_cycles`` exactly, and the lane shows up as its own
#: ``[compile-lane]`` frame in flamegraphs and reports.
LANE_TIER = "compile-lane"

#: Pseudo-block label for the engine's per-entry transition charge
#: (``CostModel.native_call_entry``), which belongs to no instruction.
ENTRY_BLOCK = "entry"


def block_bodies(native):
    """Basic-block partition of ``native``: {leader index: [indices]}.

    Uses the closure backend's leader computation so the partition is
    identical to the one its per-block counters are kept at; the walk
    from each leader matches ``compile_closures`` exactly (stop at a
    terminator, the next leader, or the end of the stream).
    """
    instructions = native.instructions
    leader_set = set(_block_leaders(native))
    size = len(instructions)
    bodies = {}
    for leader in leader_set:
        body = []
        index = leader
        while True:
            body.append(index)
            if instructions[index].op in _TERMINATORS:
                break
            if index + 1 >= size or index + 1 in leader_set:
                break
            index += 1
        bodies[leader] = body
    return bodies


class ProfileNode(object):
    """One distinct guest call path (a shadow-call-tree node).

    Every charge the profiler receives lands on the node that is
    current when it happens, so a node's counters are the *self* cost
    of its call path; inclusive costs are subtree sums.
    """

    __slots__ = (
        "code_id",
        "name",
        "children",
        "interp_ops",
        "interp_calls",
        "native_cycles",
        "native_instructions",
        "entry_cycles",
        "compile_cycles",
        "hidden_compile_cycles",
        "bailout_cycles",
        "invalidation_cycles",
    )

    def __init__(self, code_id, name):
        self.code_id = code_id
        self.name = name
        #: code_id -> child ProfileNode.
        self.children = {}
        self.interp_ops = 0
        self.interp_calls = 0
        self.native_cycles = 0
        self.native_instructions = 0
        self.entry_cycles = 0
        self.compile_cycles = 0
        #: Background-lane compile cycles (:data:`LANE_TIER`); excluded
        #: from :meth:`self_cycles` and :meth:`tier_cycles` so the
        #: main-lane exactness invariant is untouched.
        self.hidden_compile_cycles = 0
        self.bailout_cycles = 0
        self.invalidation_cycles = 0

    def tier_cycles(self, cost_model):
        """This node's self cycles, split by tier (see :data:`TIERS`)."""
        return {
            "interp": (
                self.interp_ops * cost_model.interp_op
                + self.interp_calls * cost_model.interp_call
            ),
            "native": self.native_cycles + self.entry_cycles,
            "compile": self.compile_cycles,
            "bailout": self.bailout_cycles,
            "invalidate": self.invalidation_cycles,
        }

    def self_cycles(self, cost_model):
        """Total self cycles charged to this node."""
        return (
            self.interp_ops * cost_model.interp_op
            + self.interp_calls * cost_model.interp_call
            + self.native_cycles
            + self.entry_cycles
            + self.compile_cycles
            + self.bailout_cycles
            + self.invalidation_cycles
        )


class NativeProfile(object):
    """Per-binary execution record: instruction counts and forensics.

    The reference executor increments ``instr_counts`` directly; the
    closure backend increments ``block_counts`` for completed blocks
    and ``instr_counts`` for the executed prefix of a faulting block.
    :meth:`resolved_counts` folds both into exact per-instruction
    execution counts, identical across backends.
    """

    __slots__ = (
        "native",
        "code_id",
        "name",
        "generation",
        "instr_counts",
        "block_counts",
        "forensics",
        "entry_count",
        "entry_cycles",
        "_bodies",
    )

    def __init__(self, native, generation):
        self.native = native
        self.code_id = native.code.code_id
        self.name = native.code.name
        #: 1-based compile ordinal of this binary for its function.
        self.generation = generation
        size = len(native.instructions)
        #: Executions charged per instruction index (reference backend,
        #: plus faulting-block prefixes under the closure backend).
        self.instr_counts = [0] * size
        #: Completed-block executions per leader index (closure backend).
        self.block_counts = [0] * size
        #: native index -> guard-failure record (guard forensics).
        self.forensics = {}
        self.entry_count = 0
        self.entry_cycles = 0
        self._bodies = None

    @property
    def specialized(self):
        """Whether this binary has parameter values baked in."""
        return bool(self.native.meta.get("specialized"))

    def bodies(self):
        """Basic-block partition of the binary, cached."""
        if self._bodies is None:
            self._bodies = block_bodies(self.native)
        return self._bodies

    def resolved_counts(self):
        """Exact per-instruction execution counts (both backends)."""
        final = list(self.instr_counts)
        block_counts = self.block_counts
        for leader, body in self.bodies().items():
            count = block_counts[leader]
            if count:
                for index in body:
                    final[index] += count
        return final

    def guard_failures(self):
        """Total guard failures recorded against this binary."""
        return sum(entry["count"] for entry in self.forensics.values())

    def record_guard_failure(self, bail):
        """Fold one :class:`~repro.lir.executor.Bailout` into forensics."""
        index = bail.native_index if bail.native_index is not None else -1
        entry = self.forensics.get(index)
        if entry is None:
            snapshot = bail.snapshot
            entry = {
                "native_index": index,
                "guard_op": bail.guard_op,
                "reason": bail.reason,
                "resume_pc": bail.pc,
                "resume_mode": bail.mode,
                "resume_point": None if snapshot is None else snapshot.snapshot_id,
                "count": 0,
            }
            self.forensics[index] = entry
        entry["count"] += 1


class CycleProfiler(object):
    """Attributes every engine cycle to (function, tier, block).

    Attach with ``Engine(cycle_profiler=CycleProfiler())`` (or
    ``run_benchmark(..., profile=True)``, or the ``repro profile
    --cycles`` / ``repro annotate`` CLI modes).  The engine binds its
    cost model at construction; the interpreter and executors charge
    into the profiler at the same points they feed the stats ledger,
    so after a run :meth:`attributed_cycles` equals
    ``EngineStats.total_cycles`` exactly.
    """

    def __init__(self, cost_model=None):
        #: Bound by the engine (:meth:`bind_cost_model`); used only for
        #: pricing reports, never consulted by instrumentation sites.
        self.cost_model = cost_model
        self.root = ProfileNode(None, "(engine)")
        self.stack = [self.root]
        #: The node charges land on; maintained by enter/exit_call.
        self.current = self.root
        #: NativeProfile records in registration order.
        self.binaries = []
        self._by_native = {}
        self._generations = {}
        #: code_id -> event counts for the transition tiers.
        self.compile_counts = {}
        self.bailout_counts = {}
        self.invalidation_counts = {}
        #: code_id -> background (hidden) compile count.
        self.lane_compile_counts = {}

    # -- binding ------------------------------------------------------------

    def bind_cost_model(self, cost_model):
        """Use ``cost_model`` for report pricing (the engine's model)."""
        self.cost_model = cost_model

    def _cm(self):
        if self.cost_model is None:
            from repro.engine.config import CostModel

            self.cost_model = CostModel()
        return self.cost_model

    # -- call-boundary hooks (interpreter) ---------------------------------

    def enter_call(self, code):
        """Push the shadow-stack node for a guest activation of ``code``."""
        node = self.current.children.get(code.code_id)
        if node is None:
            node = ProfileNode(code.code_id, code.name)
            self.current.children[code.code_id] = node
        self.stack.append(node)
        self.current = node

    def exit_call(self):
        """Pop the shadow stack when the activation returns/unwinds."""
        self.stack.pop()
        self.current = self.stack[-1]

    def interp_call(self):
        """Charge one interpreted-call setup to the current node."""
        self.current.interp_calls += 1

    # -- charge hooks (executors and engine) --------------------------------

    def charge_native(self, cycles, instructions):
        """Charge one native run's cycles to the current node."""
        node = self.current
        node.native_cycles += cycles
        node.native_instructions += instructions

    def charge_entry(self, native, cycles):
        """Charge one native-entry transition (call or OSR enter)."""
        self.current.entry_cycles += cycles
        record = self.native_profile(native)
        record.entry_count += 1
        record.entry_cycles += cycles

    def record_compile(self, code, native, cycles, hidden=False):
        """Charge one compilation and register its binary.

        ``hidden=True`` charges the background compiler lane instead of
        the main-lane ``compile`` tier (docs/COMPILE_PIPELINE.md).
        """
        if hidden:
            self.current.hidden_compile_cycles += cycles
            self.lane_compile_counts[code.code_id] = (
                self.lane_compile_counts.get(code.code_id, 0) + 1
            )
        else:
            self.current.compile_cycles += cycles
            self.compile_counts[code.code_id] = (
                self.compile_counts.get(code.code_id, 0) + 1
            )
        self.native_profile(native)

    def record_bailout(self, code, native, bail, cycles):
        """Charge one bailout penalty and file its guard forensics."""
        self.current.bailout_cycles += cycles
        self.bailout_counts[code.code_id] = self.bailout_counts.get(code.code_id, 0) + 1
        if native is not None:
            self.native_profile(native).record_guard_failure(bail)

    def record_invalidation(self, code, cycles):
        """Charge one invalidation (discarded binary) penalty."""
        self.current.invalidation_cycles += cycles
        self.invalidation_counts[code.code_id] = (
            self.invalidation_counts.get(code.code_id, 0) + 1
        )

    def native_profile(self, native):
        """Get (or create) the :class:`NativeProfile` for ``native``."""
        record = self._by_native.get(id(native))
        if record is None:
            code_id = native.code.code_id
            generation = self._generations.get(code_id, 0) + 1
            self._generations[code_id] = generation
            record = NativeProfile(native, generation)
            self._by_native[id(native)] = record
            self.binaries.append(record)
        return record

    # -- aggregation ---------------------------------------------------------

    def walk(self):
        """Yield ``(path, node)`` depth-first; ``path`` is a tuple of
        function names from the root's children down to ``node``."""
        todo = [((), self.root)]
        while todo:
            path, node = todo.pop()
            yield path, node
            for child in sorted(
                node.children.values(), key=lambda n: n.code_id, reverse=True
            ):
                todo.append((path + (child.name,), child))

    def attributed_cycles(self):
        """Total main-lane cycles charged anywhere — equals
        ``total_cycles`` (background-lane cycles are not in either)."""
        cost_model = self._cm()
        return sum(node.self_cycles(cost_model) for _path, node in self.walk())

    def lane_cycles(self):
        """Total background-lane compile cycles — equals
        ``EngineStats.compile_cycles_hidden``."""
        return sum(node.hidden_compile_cycles for _path, node in self.walk())

    def guard_failures(self):
        """Total guard failures recorded across all binaries."""
        return sum(record.guard_failures() for record in self.binaries)

    def functions(self):
        """Number of distinct guest functions that received charges."""
        seen = set()
        for _path, node in self.walk():
            if node.code_id is not None:
                seen.add(node.code_id)
        return len(seen)

    def attribution(self):
        """The exact (function, tier, block) cycle attribution.

        Returns a list of row dicts with keys ``code_id``, ``fn``,
        ``tier``, ``block``, ``generation``, ``count`` and ``cycles``.
        Interpreter and transition tiers attribute per function
        (``block`` is None); the native tier attributes per basic
        block of each compiled binary (``block`` is the block-leader
        instruction index, or :data:`ENTRY_BLOCK` for the per-entry
        transition charge).  The main-lane rows' cycles sum exactly to
        ``EngineStats.total_cycles``; rows with ``tier ==
        "compile-lane"`` (background compilation) sit outside that sum
        and total ``compile_cycles_hidden`` instead.
        """
        cost_model = self._cm()
        per_code = {}
        order = []
        for _path, node in self.walk():
            key = node.code_id
            agg = per_code.get(key)
            if agg is None:
                agg = per_code[key] = {
                    "name": node.name,
                    "ops": 0,
                    "calls": 0,
                    "compile": 0,
                    "lane": 0,
                    "bailout": 0,
                    "invalidate": 0,
                }
                order.append(key)
            agg["ops"] += node.interp_ops
            agg["calls"] += node.interp_calls
            agg["compile"] += node.compile_cycles
            agg["lane"] += node.hidden_compile_cycles
            agg["bailout"] += node.bailout_cycles
            agg["invalidate"] += node.invalidation_cycles

        rows = []

        def row(code_id, fn, tier, block, count, cycles, generation=None):
            rows.append(
                {
                    "code_id": code_id,
                    "fn": fn,
                    "tier": tier,
                    "block": block,
                    "generation": generation,
                    "count": count,
                    "cycles": cycles,
                }
            )

        for key in order:
            agg = per_code[key]
            interp_cycles = (
                agg["ops"] * cost_model.interp_op
                + agg["calls"] * cost_model.interp_call
            )
            if agg["ops"] or agg["calls"]:
                row(key, agg["name"], "interp", None, agg["ops"], interp_cycles)
            if agg["compile"]:
                row(
                    key, agg["name"], "compile", None,
                    self.compile_counts.get(key, 0), agg["compile"],
                )
            if agg["bailout"]:
                row(
                    key, agg["name"], "bailout", None,
                    self.bailout_counts.get(key, 0), agg["bailout"],
                )
            if agg["invalidate"]:
                row(
                    key, agg["name"], "invalidate", None,
                    self.invalidation_counts.get(key, 0), agg["invalidate"],
                )
            if agg["lane"]:
                # Background-lane compiles: a distinct tier, outside
                # the main-lane rows' total_cycles sum.
                row(
                    key, agg["name"], LANE_TIER, None,
                    self.lane_compile_counts.get(key, 0), agg["lane"],
                )

        for record in self.binaries:
            costs = record.native.cost_table(cost_model)
            final = record.resolved_counts()
            for leader in sorted(record.bodies()):
                body = record.bodies()[leader]
                cycles = sum(final[index] * costs[index] for index in body)
                if final[leader] or cycles:
                    row(
                        record.code_id, record.name, "native", leader,
                        final[leader], cycles, generation=record.generation,
                    )
            if record.entry_count:
                row(
                    record.code_id, record.name, "native", ENTRY_BLOCK,
                    record.entry_count, record.entry_cycles,
                    generation=record.generation,
                )
        return rows

    def function_totals(self):
        """Per-function self/inclusive cycle totals.

        Returns ``{code_id: totals}`` where ``totals`` carries the
        function name, per-tier self cycles, total self cycles and
        inclusive cycles (self plus everything called beneath it; a
        recursive function's cycles count once per distinct stack, not
        once per nested occurrence).
        """
        cost_model = self._cm()
        totals = {}

        def entry_for(node):
            entry = totals.get(node.code_id)
            if entry is None:
                entry = totals[node.code_id] = {
                    "code_id": node.code_id,
                    "name": node.name,
                    "self_cycles": 0,
                    "inclusive_cycles": 0,
                    "tiers": dict.fromkeys(TIERS, 0),
                    "lane_cycles": 0,
                    "native_instructions": 0,
                    "interp_ops": 0,
                }
            return entry

        def visit(node, active):
            entry = entry_for(node)
            self_cycles = node.self_cycles(cost_model)
            entry["self_cycles"] += self_cycles
            entry["lane_cycles"] += node.hidden_compile_cycles
            entry["interp_ops"] += node.interp_ops
            entry["native_instructions"] += node.native_instructions
            for tier, cycles in node.tier_cycles(cost_model).items():
                entry["tiers"][tier] += cycles
            subtree = self_cycles
            topmost = node.code_id not in active
            if topmost:
                active.add(node.code_id)
            for child in node.children.values():
                subtree += visit(child, active)
            if topmost:
                active.remove(node.code_id)
                entry["inclusive_cycles"] += subtree
            return subtree

        visit(self.root, set())
        return totals

    def summary(self):
        """Headline numbers (the ``profile.summary`` trace payload)."""
        return {
            "functions": self.functions(),
            "binaries": len(self.binaries),
            "attributed_cycles": self.attributed_cycles(),
            "guard_failures": self.guard_failures(),
        }
