"""Render :class:`~repro.telemetry.profiler.CycleProfiler` results.

Three exporters, matching what real JIT tooling ships:

* :func:`format_function_table` — the self/inclusive hot-function
  table with a per-tier breakdown (interp / native / compile /
  bailout / invalidate cycles per function);
* :func:`to_collapsed` — collapsed-stack ("folded") output in the
  format every flamegraph tool consumes: one ``a;b;c count`` line per
  distinct stack, where the leaf frame is a ``[tier]`` marker and the
  count is cycles.  :func:`parse_collapsed` is the matching parser
  (the round-trip is tested: parsed counts sum back to
  ``total_cycles``);
* :func:`annotate_function` — the native disassembly of every binary
  compiled for a function, interleaved with per-instruction execution
  counts, cycle shares and guard-failure counts, followed by the
  binary's guard-forensics table.

All output is deterministic: ordering is by cycles (descending) with
code-id tiebreaks, never by hash order.
"""

from repro.telemetry.profiler import ENTRY_BLOCK, LANE_TIER, TIERS


def function_table_rows(profiler):
    """Hot-function rows, sorted by self cycles descending.

    Each row is the :meth:`CycleProfiler.function_totals` entry for one
    function (the profiler root's ``(engine)`` pseudo-entry is dropped
    unless it was actually charged).
    """
    totals = profiler.function_totals()
    rows = [
        entry
        for entry in totals.values()
        if entry["code_id"] is not None or entry["self_cycles"]
    ]
    rows.sort(key=lambda entry: (-entry["self_cycles"], entry["code_id"] or 0))
    return rows


def format_function_table(profiler, total_cycles=None, top=None):
    """The self/inclusive hot-function table as text.

    When any function was compiled on the background lane an extra
    ``lane`` column appears (hidden cycles, outside the self sum);
    synchronous-only profiles render exactly as before.
    """
    rows = function_table_rows(profiler)
    if total_cycles is None:
        total_cycles = profiler.attributed_cycles()
    show_lane = any(entry["lane_cycles"] for entry in rows)
    shown = rows if top is None else rows[:top]
    header = "%-24s %12s %7s %12s %10s %10s %9s %9s %9s" % (
        "function", "self", "self%", "inclusive",
        "interp", "native", "compile", "bailout", "invalid",
    )
    if show_lane:
        header += " %9s" % "lane"
    lines = [header]
    for entry in shown:
        tiers = entry["tiers"]
        share = 100.0 * entry["self_cycles"] / total_cycles if total_cycles else 0.0
        line = "%-24s %12d %6.2f%% %12d %10d %10d %9d %9d %9d" % (
            entry["name"],
            entry["self_cycles"],
            share,
            entry["inclusive_cycles"],
            tiers["interp"],
            tiers["native"],
            tiers["compile"],
            tiers["bailout"],
            tiers["invalidate"],
        )
        if show_lane:
            line += " %9d" % entry["lane_cycles"]
        lines.append(line)
    if top is not None and len(rows) > top:
        lines.append("... %d more" % (len(rows) - top))
    return "\n".join(lines)


# -- collapsed stacks ("folded" flamegraph format) ---------------------------


def to_collapsed(profiler):
    """Collapsed-stack export: ``frame;frame;[tier] cycles`` lines.

    Each line is one distinct guest stack with a ``[tier]`` leaf frame
    naming where the cycles were spent (``[interp]``, ``[native]``,
    ``[compile]``, ``[bailout]``, ``[invalidate]``); counts are model
    cycles.  The format is what ``flamegraph.pl``, speedscope and
    inferno consume directly.  Zero-cycle stacks are omitted, so the
    main-lane line counts sum exactly to ``total_cycles``.  Background
    compilation adds distinct ``[compile-lane]`` leaf frames whose
    counts sum to ``compile_cycles_hidden``, outside the main-lane
    total (absent entirely for synchronous-only runs).
    """
    cost_model = profiler._cm()
    lines = []
    for path, node in profiler.walk():
        base = ";".join(path) if path else "(engine)"
        for tier in TIERS:
            cycles = node.tier_cycles(cost_model)[tier]
            if cycles:
                lines.append("%s;[%s] %d" % (base, tier, cycles))
        if node.hidden_compile_cycles:
            lines.append("%s;[%s] %d" % (base, LANE_TIER, node.hidden_compile_cycles))
    lines.sort()
    return "\n".join(lines)


def write_collapsed(profiler, path):
    """Write :func:`to_collapsed` output to ``path``."""
    with open(path, "w") as handle:
        text = to_collapsed(profiler)
        if text:
            handle.write(text + "\n")


def parse_collapsed(text):
    """Parse collapsed-stack text back to ``[(frames tuple, count)]``.

    The standard flamegraph grammar: each non-empty line is a
    semicolon-separated frame list, whitespace, and an integer count.
    Raises ``ValueError`` on malformed lines.
    """
    stacks = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text:
            raise ValueError("malformed collapsed-stack line %r" % line)
        stacks.append((tuple(stack_text.split(";")), int(count_text)))
    return stacks


# -- annotated disassembly ---------------------------------------------------


def annotate_function(profiler, fn_name):
    """Annotated native disassembly for every binary of ``fn_name``.

    For each binary compiled for the function (in compile order), the
    disassembly is interleaved with per-instruction execution counts,
    cycle totals, each instruction's share of the binary's native
    cycles, and guard-failure counts; a guard-forensics table follows
    when the binary bailed out.  Raises ``ValueError`` when the
    profiler saw no binary for ``fn_name``.
    """
    records = [record for record in profiler.binaries if record.name == fn_name]
    if not records:
        known = sorted({record.name for record in profiler.binaries})
        raise ValueError(
            "no compiled binary for %r; compiled functions: %s"
            % (fn_name, ", ".join(known) if known else "(none)")
        )
    cost_model = profiler._cm()
    sections = []
    for record in records:
        native = record.native
        costs = native.cost_table(cost_model)
        final = record.resolved_counts()
        total = sum(count * cost for count, cost in zip(final, costs))
        lines = [
            "== %s (code %d) · binary %d/%d · %s · %d instructions · "
            "%d entries · %d native cycles =="
            % (
                record.name,
                record.code_id,
                record.generation,
                len(records),
                "specialized" if record.specialized else "generic",
                native.size,
                record.entry_count,
                total,
            )
        ]
        if record.specialized:
            lines.append(
                ";; specialized on: %r" % (native.meta.get("specialized_args"),)
            )
        lane_count = profiler.lane_compile_counts.get(record.code_id, 0)
        if lane_count:
            lines.append(
                ";; compiler lane: %d background compile(s), %d hidden cycles"
                % (
                    lane_count,
                    sum(
                        node.hidden_compile_cycles
                        for _path, node in profiler.walk()
                        if node.code_id == record.code_id
                    ),
                )
            )
        lines.append(
            "   %5s %10s %12s %7s %7s  %s"
            % ("idx", "count", "cycles", "share", "guards", "instruction")
        )
        for index, instruction in enumerate(native.instructions):
            count = final[index]
            cycles = count * costs[index]
            share = 100.0 * cycles / total if total else 0.0
            failures = record.forensics.get(index)
            marker = "=>" if index == native.osr_index else "  "
            lines.append(
                "%s %5d %10d %12d %6.2f%% %7s  %r"
                % (
                    marker,
                    index,
                    count,
                    cycles,
                    share,
                    failures["count"] if failures is not None else ".",
                    instruction,
                )
            )
        if record.forensics:
            lines.append("-- guard forensics --")
            lines.append(
                "   %5s %8s %-16s %-16s %10s %8s %6s"
                % ("idx", "count", "guard", "reason", "resume_pc", "mode", "snap")
            )
            for index in sorted(record.forensics):
                entry = record.forensics[index]
                lines.append(
                    "   %5d %8d %-16s %-16s %10d %8s %6s"
                    % (
                        entry["native_index"],
                        entry["count"],
                        entry["guard_op"],
                        entry["reason"],
                        entry["resume_pc"],
                        entry["resume_mode"],
                        entry["resume_point"],
                    )
                )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


# -- machine-readable bundle --------------------------------------------------


def profile_as_dict(profiler, stats=None):
    """JSON-safe bundle of the whole profile (CLI ``--json`` payload).

    Contains the summary, the hot-function rows, the exact attribution
    rows, and every binary's guard-forensics entries; when ``stats``
    is given its ``as_dict()`` rides along so one file joins profile
    and ledger.
    """
    bundle = {
        "summary": profiler.summary(),
        "functions": function_table_rows(profiler),
        "attribution": profiler.attribution(),
        "guard_forensics": [
            {
                "fn": record.name,
                "code_id": record.code_id,
                "generation": record.generation,
                "specialized": record.specialized,
                "failures": [
                    record.forensics[index] for index in sorted(record.forensics)
                ],
            }
            for record in profiler.binaries
            if record.forensics
        ],
    }
    if stats is not None:
        bundle["stats"] = stats.as_dict()
    return bundle
