"""Call and argument-set profiling (paper Section 2).

:class:`CallProfiler` plugs into the interpreter's ``profiler`` hook
and records, per guest function:

* how many times it was called (Figure 1 / Figure 3 top),
* how many *distinct argument sets* it received (Figure 2 / Figure 3
  bottom), under the same matching the specialization cache uses
  (primitives by value and representation, references by identity),
* the type tags of the parameters of functions only ever called with a
  single argument set (Figure 4).

The same class profiles synthetic web-corpus traces (Figures 1, 2, 4
for the Alexa study) — it only needs ``record_call``.
"""

from collections import Counter

from repro.jsvm.values import arguments_key, type_tag

#: The type categories of the paper's Figure 4, in its display order.
FIGURE4_CATEGORIES = [
    "array",
    "bool",
    "double",
    "function",
    "int",
    "null",
    "object",
    "string",
    "undefined",
]


class FunctionProfile(object):
    """Per-function call record."""

    __slots__ = ("name", "call_count", "argument_sets", "first_arg_tags")

    def __init__(self, name):
        self.name = name
        self.call_count = 0
        self.argument_sets = set()
        #: Type tags of the first observed argument list.
        self.first_arg_tags = None

    @property
    def distinct_argument_sets(self):
        return len(self.argument_sets)

    @property
    def monomorphic(self):
        """Called with exactly one argument set throughout the run."""
        return len(self.argument_sets) == 1


class CallProfiler(object):
    """Implements the interpreter's ``profiler`` interface."""

    def __init__(self):
        self.profiles = {}

    def record_call(self, function, args):
        key = getattr(function, "function_id", None)
        if key is None:
            key = id(function)
        profile = self.profiles.get(key)
        if profile is None:
            profile = FunctionProfile(getattr(function, "name", str(function)))
            self.profiles[key] = profile
        profile.call_count += 1
        profile.argument_sets.add(arguments_key(args))
        if profile.first_arg_tags is None:
            profile.first_arg_tags = tuple(type_tag(a) for a in args)

    # Synthetic traces (the web corpus) record pre-keyed calls.
    def record_synthetic_call(self, function_key, args_key, arg_tags, name=None):
        profile = self.profiles.get(function_key)
        if profile is None:
            profile = FunctionProfile(name or str(function_key))
            self.profiles[function_key] = profile
        profile.call_count += 1
        profile.argument_sets.add(args_key)
        if profile.first_arg_tags is None:
            profile.first_arg_tags = tuple(arg_tags)

    # -- figure data ---------------------------------------------------------

    @property
    def num_functions(self):
        return len(self.profiles)

    def call_count_histogram(self):
        """Figure 1 / Figure 3 (top): #functions per call count."""
        return histogram(p.call_count for p in self.profiles.values())

    def argument_set_histogram(self):
        """Figure 2 / Figure 3 (bottom): #functions per distinct-set count."""
        return histogram(p.distinct_argument_sets for p in self.profiles.values())

    def fraction_called_once(self):
        return self._fraction(lambda p: p.call_count == 1)

    def fraction_single_argument_set(self):
        return self._fraction(lambda p: p.monomorphic)

    def _fraction(self, predicate):
        if not self.profiles:
            return 0.0
        hits = sum(1 for p in self.profiles.values() if predicate(p))
        return hits / float(len(self.profiles))

    def parameter_type_distribution(self):
        """Figure 4: type mix of parameters of monomorphic functions."""
        tags = []
        for profile in self.profiles.values():
            if profile.monomorphic and profile.first_arg_tags:
                tags.extend(profile.first_arg_tags)
        return type_distribution(tags)


def histogram(values):
    """Counter value -> frequency."""
    return Counter(values)


def percent_histogram(values):
    """Counter value -> fraction of the population."""
    counts = Counter(values)
    total = float(sum(counts.values())) or 1.0
    return {k: v / total for k, v in counts.items()}


def type_distribution(tags):
    """Fraction per Figure-4 category (categories always present)."""
    counts = Counter(tags)
    total = float(sum(counts.values())) or 1.0
    return {
        category: counts.get(category, 0) / total for category in FIGURE4_CATEGORIES
    }
