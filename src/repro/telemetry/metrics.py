"""Deterministic process-wide metrics: the fleet-health counterpart of
the per-run :class:`~repro.engine.stats.EngineStats` ledger.

`EngineStats` answers "what did this run cost"; this module answers the
questions a production serving tier asks continuously — tier mix, deopt
and invalidation rates, specialization-cache occupancy, compile-lane
depth and install latency, disk-cache hit rate — as a **time series**
over the engine's deterministic cycle clock, mergeable across worker
processes into one fleet view.

Design rules (the same contract as the trace layer, docs/TRACING.md):

* **Zero overhead when disabled.**  The engine holds ``metrics = None``
  by default; every instrumentation site is a single ``is not None``
  check, and nothing here ever touches the cost model — enabling
  metrics cannot change any observable (stats, cycles, output, traces).
* **A closed name registry.**  Every metric the engine may record is
  declared in :data:`METRIC_SCHEMA` with its type (``counter`` /
  ``gauge`` / ``histogram``), its merge policy, and — for histograms —
  its fixed bucket bounds.  :class:`MetricsRegistry` rejects undeclared
  names, and ``docs/METRICS.md`` is schema-checked against the same
  table, exactly like the trace event schema.
* **Deterministic snapshots.**  Snapshots are timestamped on the
  engine's cycle clock (not wall time), taken when the clock crosses
  fixed interval boundaries, so two runs of the same workload produce
  bit-identical JSONL time series on every backend and every machine.
* **Exact merge.**  Counters and histogram buckets are integers summed
  exactly; gauges fold by their declared policy (``sum`` for
  occupancies and cycle meters, ``max`` for high-water marks).  Folding
  the per-worker registries of ``bench --jobs N`` therefore yields the
  *same numbers* as a single-process run — tested, not hoped.

Two exporters turn a registry (or a merged payload) into artifacts:

* :func:`to_prometheus` — Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / samples, histograms with cumulative
  ``_bucket{le=...}`` rows);
* :func:`write_metrics_jsonl` — one JSON object per snapshot, the
  machine-readable time series.

See ``docs/METRICS.md`` for the full metric name registry, bucket
schemes, exporter formats and merge semantics.
"""

import json

#: Fixed bucket upper bounds (cycles) for the background-lane install
#: latency histogram: enqueue-to-install distance on the main-lane
#: clock.  Powers of four, spanning "installed at the next poll point"
#: through "sat behind a deep queue".
INSTALL_LATENCY_BUCKETS = (256, 1024, 4096, 16384, 65536, 262144)

#: Fixed bucket upper bounds (cycles) for the per-compilation cost
#: histogram (the ``cycles`` field of ``compile.finish`` events).
COMPILE_COST_BUCKETS = (1024, 2048, 4096, 8192, 16384, 32768, 65536)

#: Fixed bucket upper bounds (model cycles) for the serving tier's
#: request-latency histogram: arrival-to-completion on the admission
#: lane's deterministic clock (docs/SERVING.md).  Powers of four from
#: "tiny cached request" through "cold compile storm".
REQUEST_LATENCY_BUCKETS = (4096, 16384, 65536, 262144, 1048576, 4194304)

#: Fixed bucket upper bounds (model cycles) for the serving tier's
#: queueing-delay histogram (arrival to dispatch).
QUEUE_WAIT_BUCKETS = (64, 256, 1024, 4096, 16384, 65536)

#: Every metric the engine may record: name -> declaration.  Each
#: declaration carries ``type`` (``counter`` | ``gauge`` |
#: ``histogram``), ``help`` (the Prometheus HELP string), ``merge``
#: (how multi-process folding combines values: ``sum`` or ``max``;
#: counters and histograms always sum), and for histograms the fixed
#: ``buckets`` bounds.  This registry is the single source of truth:
#: :class:`MetricsRegistry` validates every record against it and
#: ``tests/test_documentation.py`` checks ``docs/METRICS.md`` covers
#: exactly these names.
METRIC_SCHEMA = {
    # -- tier mix ---------------------------------------------------------
    "repro_engine_calls_interp_total": {
        "type": "counter",
        "help": "guest calls executed by the interpreter (JIT declined)",
    },
    "repro_engine_calls_native_total": {
        "type": "counter",
        "help": "guest calls dispatched to a compiled binary",
    },
    "repro_engine_osr_enters_total": {
        "type": "counter",
        "help": "loop back-edge (on-stack replacement) entries into native code",
    },
    # -- compilation ------------------------------------------------------
    "repro_engine_compiles_total": {
        "type": "counter",
        "help": "successful compilations (either lane)",
    },
    "repro_engine_osr_compiles_total": {
        "type": "counter",
        "help": "compilations entered from a loop back edge",
    },
    "repro_engine_recompilations_total": {
        "type": "counter",
        "help": "compilations beyond the first, summed over functions",
    },
    # -- guard / deopt / invalidation rates -------------------------------
    "repro_engine_bailouts_total": {
        "type": "counter",
        "help": "guard failures (deoptimizations to the interpreter)",
    },
    "repro_engine_shape_guard_bailouts_total": {
        "type": "counter",
        "help": "bailouts whose failing guard was a guardshape",
    },
    "repro_engine_invalidations_total": {
        "type": "counter",
        "help": "compiled binaries discarded (any reason)",
    },
    "repro_engine_retrains_total": {
        "type": "counter",
        "help": "shape-retrain discards (binary dropped so the IC can relearn)",
    },
    "repro_engine_ic_transitions_total": {
        "type": "counter",
        "help": "property-site inline caches learning a new receiver shape",
    },
    "repro_engine_retrain_noops_total": {
        "type": "counter",
        "help": "shape-retrain discards skipped (enriched IC reproduces the binary)",
    },
    # -- deoptless dispatch table (docs/DEOPTLESS.md) ---------------------
    "repro_deoptless_reentries_total": {
        "type": "counter",
        "help": "guard misses recovered by dispatching into a sibling binary",
    },
    "repro_deoptless_misses_total": {
        "type": "counter",
        "help": "dispatch-table misses (no compatible sibling compiled yet)",
    },
    "repro_deoptless_generalized_compiles_total": {
        "type": "counter",
        "help": "generalized siblings compiled after repeated table misses",
    },
    # -- specialization cache ---------------------------------------------
    "repro_spec_cache_hits_total": {
        "type": "counter",
        "help": "calls served by a cached specialized binary",
    },
    "repro_spec_cache_misses_total": {
        "type": "counter",
        "help": "specialized-call lookups that found no matching binary",
    },
    "repro_spec_cache_stores_total": {
        "type": "counter",
        "help": "specialized binaries inserted into the per-function cache",
    },
    # -- background compile lane ------------------------------------------
    "repro_compile_queue_enqueued_total": {
        "type": "counter",
        "help": "compile jobs handed to the background lane",
    },
    "repro_compile_queue_installed_total": {
        "type": "counter",
        "help": "background binaries installed at a main-lane poll point",
    },
    "repro_compile_queue_dropped_total": {
        "type": "counter",
        "help": "background jobs dropped (stale policy state or cancelled)",
    },
    # -- persistent disk code cache ---------------------------------------
    "repro_cache_disk_hits_total": {
        "type": "counter",
        "help": "disk code cache hits (compile pipeline skipped)",
    },
    "repro_cache_disk_misses_total": {
        "type": "counter",
        "help": "disk code cache misses (including corruption-degraded reads)",
    },
    "repro_cache_disk_stores_total": {
        "type": "counter",
        "help": "artifacts persisted to the disk code cache",
    },
    "repro_cache_disk_evictions_total": {
        "type": "counter",
        "help": "artifacts removed by cache eviction (size/entry pressure)",
    },
    "repro_cache_disk_corrupt_total": {
        "type": "counter",
        "help": "disk entries rejected as torn/corrupt/unreadable (degraded to miss)",
    },
    "repro_cache_disk_uncacheable_total": {
        "type": "counter",
        "help": "compiles that could not be content-addressed (identity values)",
    },
    # -- cycle meters (gauges: monotonically sampled from the clock) ------
    "repro_engine_total_cycles": {
        "type": "gauge",
        "merge": "sum",
        "help": "the deterministic cycle clock (interp + native + stalled compile + penalties)",
    },
    "repro_engine_interp_cycles": {
        "type": "gauge",
        "merge": "sum",
        "help": "cycles spent interpreting (ops + call setup)",
    },
    "repro_engine_native_cycles": {
        "type": "gauge",
        "merge": "sum",
        "help": "cycles spent in compiled code",
    },
    "repro_engine_compile_cycles_stalled": {
        "type": "gauge",
        "merge": "sum",
        "help": "compile cycles charged on the main lane (program stalled)",
    },
    "repro_engine_compile_cycles_hidden": {
        "type": "gauge",
        "merge": "sum",
        "help": "compile cycles charged to the background lane (overlapped)",
    },
    "repro_engine_bailout_cycles": {
        "type": "gauge",
        "merge": "sum",
        "help": "cycles paid in bailout penalties",
    },
    "repro_engine_invalidation_cycles": {
        "type": "gauge",
        "merge": "sum",
        "help": "cycles paid in invalidation penalties",
    },
    # -- occupancy gauges -------------------------------------------------
    "repro_engine_functions_hot": {
        "type": "gauge",
        "merge": "sum",
        "help": "functions the engine tracks JIT state for",
    },
    "repro_spec_cache_entries": {
        "type": "gauge",
        "merge": "sum",
        "help": "specialized binaries currently cached across all functions",
    },
    "repro_engine_ic_sites_mono": {
        "type": "gauge",
        "merge": "sum",
        "help": "property sites whose inline cache holds one shape",
    },
    "repro_engine_ic_sites_poly": {
        "type": "gauge",
        "merge": "sum",
        "help": "property sites whose inline cache holds several shapes",
    },
    "repro_engine_ic_sites_mega": {
        "type": "gauge",
        "merge": "sum",
        "help": "property sites degraded to megamorphic",
    },
    "repro_compile_queue_depth": {
        "type": "gauge",
        "merge": "sum",
        "help": "compile jobs currently pending on the background lane",
    },
    "repro_compile_queue_depth_high_water": {
        "type": "gauge",
        "merge": "max",
        "help": "deepest the background lane's queue has ever been",
    },
    "repro_compile_queue_lane_cycle": {
        "type": "gauge",
        "merge": "max",
        "help": "the compiler lane clock's high-water mark (when it last goes idle)",
    },
    # -- histograms -------------------------------------------------------
    "repro_compile_install_latency_cycles": {
        "type": "histogram",
        "help": "main-lane cycles between enqueue and install of background binaries",
        "buckets": INSTALL_LATENCY_BUCKETS,
    },
    "repro_compile_cycles_per_compile": {
        "type": "histogram",
        "help": "cycle cost of each compilation",
        "buckets": COMPILE_COST_BUCKETS,
    },
    # -- serving tier (repro.serving, docs/SERVING.md) --------------------
    "repro_serving_requests_total": {
        "type": "counter",
        "help": "requests admitted and executed to completion",
    },
    "repro_serving_rejected_total": {
        "type": "counter",
        "help": "requests rejected by admission (tenant queue at capacity)",
    },
    "repro_serving_batches_total": {
        "type": "counter",
        "help": "request batches dispatched to tenant isolates",
    },
    "repro_serving_isolation_violations_total": {
        "type": "counter",
        "help": "tenant-isolation breaches detected (foreign shape tree observed)",
    },
    "repro_serving_tenants": {
        "type": "gauge",
        "merge": "sum",
        "help": "tenant isolates hosted",
    },
    "repro_serving_queue_depth_high_water": {
        "type": "gauge",
        "merge": "max",
        "help": "deepest any tenant's admission queue has ever been",
    },
    "repro_serving_request_latency_cycles": {
        "type": "histogram",
        "help": "arrival-to-completion request latency on the admission clock",
        "buckets": REQUEST_LATENCY_BUCKETS,
    },
    "repro_serving_queue_wait_cycles": {
        "type": "histogram",
        "help": "arrival-to-dispatch queueing delay on the admission clock",
        "buckets": QUEUE_WAIT_BUCKETS,
    },
}

#: Metric names in registry (= documentation = export) order.
METRIC_NAMES = tuple(METRIC_SCHEMA)


def _zero_clock():
    """Default clock for a registry not yet bound to an engine."""
    return 0


def _empty_histogram(spec):
    """A zeroed histogram cell for one schema declaration.

    ``counts`` has one slot per finite bucket plus the +Inf overflow;
    ``sum``/``count`` mirror the Prometheus ``_sum``/``_count`` series.
    """
    return {
        "buckets": list(spec["buckets"]),
        "counts": [0] * (len(spec["buckets"]) + 1),
        "sum": 0,
        "count": 0,
    }


def empty_payload():
    """A zeroed metrics payload with the full schema key set.

    The payload shape is what :meth:`MetricsRegistry.as_dict` returns
    and what :func:`merge_payloads` folds — every metric present, every
    value zero, ``snapshots`` empty.
    """
    counters = {}
    gauges = {}
    histograms = {}
    for name, spec in METRIC_SCHEMA.items():
        kind = spec["type"]
        if kind == "counter":
            counters[name] = 0
        elif kind == "gauge":
            gauges[name] = 0
        else:
            histograms[name] = _empty_histogram(spec)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "snapshots": [],
    }


class MetricsRegistry(object):
    """Holds every declared metric for one engine (or one merged fleet).

    All metrics exist from construction (zeroed), so exports and merges
    always carry the full, stable key set.  ``snapshot_interval`` (in
    model cycles) arms periodic snapshotting: the engine polls
    :meth:`maybe_snapshot` at its safe points and a snapshot is taken
    each time the cycle clock crosses an interval boundary.  ``0``
    disables the time series; :meth:`finalize` always records one
    closing snapshot.
    """

    def __init__(self, snapshot_interval=0, clock=None):
        self.snapshot_interval = snapshot_interval
        self._clock = clock if clock is not None else _zero_clock
        self._next_due = snapshot_interval if snapshot_interval else 0
        payload = empty_payload()
        self.counters = payload["counters"]
        self.gauges = payload["gauges"]
        self.histograms = payload["histograms"]
        #: The cycle-stamped time series (list of snapshot dicts).
        self.snapshots = []
        #: 0-arg callables invoked before every snapshot so gauges and
        #: folded counters reflect the instant of the snapshot (the
        #: engine registers its collector here).
        self.collectors = []

    # -- wiring ---------------------------------------------------------------

    def bind_clock(self, clock):
        """Use ``clock`` (a 0-arg callable) to timestamp snapshots."""
        self._clock = clock

    # -- recording ------------------------------------------------------------

    def inc(self, name, amount=1):
        """Add ``amount`` to counter ``name``; rejects undeclared names."""
        if name not in self.counters:
            self._reject(name, "counter")
        self.counters[name] += amount

    def set_counter(self, name, value):
        """Set a *collected* counter to its monotonic source value.

        For counters mirrored from an authoritative live ledger (the
        stats object, the queue, the disk cache) rather than counted at
        instrumentation sites — the collector re-reads the source at
        every snapshot, so the counter can only move forward.
        """
        if name not in self.counters:
            self._reject(name, "counter")
        self.counters[name] = value

    def set_gauge(self, name, value):
        """Set gauge ``name``; rejects undeclared names."""
        if name not in self.gauges:
            self._reject(name, "gauge")
        self.gauges[name] = value

    def observe(self, name, value):
        """Record ``value`` into histogram ``name``'s fixed buckets."""
        cell = self.histograms.get(name)
        if cell is None:
            self._reject(name, "histogram")
        index = 0
        for bound in cell["buckets"]:
            if value <= bound:
                break
            index += 1
        cell["counts"][index] += 1
        cell["sum"] += value
        cell["count"] += 1

    def _reject(self, name, kind):
        spec = METRIC_SCHEMA.get(name)
        if spec is None:
            raise ValueError("unknown metric %r (see METRIC_SCHEMA)" % name)
        raise ValueError(
            "metric %r is a %s, not a %s" % (name, spec["type"], kind)
        )

    # -- snapshots ------------------------------------------------------------

    def collect(self):
        """Run every registered collector (refresh sampled metrics)."""
        for collector in self.collectors:
            collector()

    def _snapshot_record(self, ts):
        return {
            "ts": ts,
            "seq": len(self.snapshots),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "buckets": list(cell["buckets"]),
                    "counts": list(cell["counts"]),
                    "sum": cell["sum"],
                    "count": cell["count"],
                }
                for name, cell in self.histograms.items()
            },
        }

    def maybe_snapshot(self):
        """Take a snapshot if the cycle clock crossed the next boundary.

        Called from the engine's poll points; a no-op (one integer
        compare) until the boundary, and at most one snapshot is taken
        per crossing however far the clock jumped — so the series is a
        deterministic function of the clock alone.
        """
        if not self.snapshot_interval:
            return
        now = self._clock()
        if now < self._next_due:
            return
        self.collect()
        self.snapshots.append(self._snapshot_record(now))
        self._next_due = (now // self.snapshot_interval + 1) * self.snapshot_interval

    def finalize(self):
        """Collect and record the closing snapshot (any interval)."""
        self.collect()
        self.snapshots.append(self._snapshot_record(self._clock()))

    # -- export ---------------------------------------------------------------

    def as_dict(self):
        """The full registry as a JSON-safe payload (stable key set)."""
        payload = self._snapshot_record(self._clock())
        return {
            "counters": payload["counters"],
            "gauges": payload["gauges"],
            "histograms": payload["histograms"],
            "snapshots": list(self.snapshots),
        }


# -- merge --------------------------------------------------------------------


def merge_payloads(payloads):
    """Fold per-process metric payloads into one exact fleet view.

    Counters and histogram cells (integer buckets, sums, counts) are
    summed exactly; gauges fold by their declared ``merge`` policy
    (``sum`` for occupancies and cycle meters, ``max`` for high-water
    marks).  Snapshots are per-process time series and are *not*
    merged — the fleet payload carries an empty list.  Summing is
    associative and commutative on integers, so the fold is
    order-independent: the per-worker registries of ``bench --jobs N``
    merge to exactly the single-process totals.
    """
    merged = empty_payload()
    for payload in payloads:
        for name, value in payload.get("counters", {}).items():
            if name in merged["counters"]:
                merged["counters"][name] += value
        for name, value in payload.get("gauges", {}).items():
            if name not in merged["gauges"]:
                continue
            if METRIC_SCHEMA[name].get("merge") == "max":
                if value > merged["gauges"][name]:
                    merged["gauges"][name] = value
            else:
                merged["gauges"][name] += value
        for name, cell in payload.get("histograms", {}).items():
            target = merged["histograms"].get(name)
            if target is None or list(cell["buckets"]) != target["buckets"]:
                continue
            for index, count in enumerate(cell["counts"]):
                target["counts"][index] += count
            target["sum"] += cell["sum"]
            target["count"] += cell["count"]
    return merged


# -- exporters ----------------------------------------------------------------


def _coerce_payload(source):
    """Accept a registry or an already-built payload dict."""
    if isinstance(source, MetricsRegistry):
        return source.as_dict()
    return source


def to_prometheus(source):
    """Render a registry or payload in Prometheus text exposition format.

    Deterministic: metrics appear in :data:`METRIC_SCHEMA` order, each
    with its ``# HELP`` and ``# TYPE`` preamble; histograms expose the
    standard cumulative ``_bucket{le="..."}`` series (a ``+Inf`` bucket
    included) plus ``_sum`` and ``_count``.
    """
    payload = _coerce_payload(source)
    lines = []
    for name, spec in METRIC_SCHEMA.items():
        kind = spec["type"]
        lines.append("# HELP %s %s" % (name, spec["help"]))
        lines.append("# TYPE %s %s" % (name, kind))
        if kind == "counter":
            lines.append("%s %d" % (name, payload["counters"].get(name, 0)))
        elif kind == "gauge":
            lines.append("%s %d" % (name, payload["gauges"].get(name, 0)))
        else:
            cell = payload["histograms"].get(name) or _empty_histogram(spec)
            cumulative = 0
            for bound, count in zip(cell["buckets"], cell["counts"]):
                cumulative += count
                lines.append('%s_bucket{le="%d"} %d' % (name, bound, cumulative))
            cumulative += cell["counts"][-1]
            lines.append('%s_bucket{le="+Inf"} %d' % (name, cumulative))
            lines.append("%s_sum %d" % (name, cell["sum"]))
            lines.append("%s_count %d" % (name, cell["count"]))
    return "\n".join(lines) + "\n"


def write_prometheus(source, path):
    """Write :func:`to_prometheus` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_prometheus(source))


def snapshots_to_jsonl(source):
    """Render a payload's snapshots as JSON Lines (one per snapshot).

    When the source recorded no periodic snapshots, a single line
    holding the final aggregate state (``ts`` = final clock) is
    emitted, so the output is never empty.  Keys are sorted, so two
    identical runs produce bit-identical text.
    """
    payload = _coerce_payload(source)
    snapshots = payload.get("snapshots") or []
    if not snapshots:
        record = {
            "ts": payload.get("ts", 0),
            "seq": 0,
            "counters": payload["counters"],
            "gauges": payload["gauges"],
            "histograms": payload["histograms"],
        }
        snapshots = [record]
    return "\n".join(json.dumps(snap, sort_keys=True) for snap in snapshots)


def write_metrics_jsonl(source, path):
    """Write :func:`snapshots_to_jsonl` output to ``path``."""
    with open(path, "w") as handle:
        text = snapshots_to_jsonl(source)
        if text:
            handle.write(text + "\n")


# -- console dashboard (`repro top`) ------------------------------------------

#: Eight-level bar glyphs for the dashboard sparklines.
SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def sparkline(values, width=40):
    """Render ``values`` as a fixed-width unicode sparkline.

    Values are downsampled (bucket means) to ``width`` columns and
    scaled against the series maximum; an empty or all-zero series
    renders as spaces.  Deterministic — no wall-clock, no randomness.
    """
    if not values:
        return " " * width
    if len(values) > width:
        step = len(values) / float(width)
        sampled = []
        for column in range(width):
            lo = int(column * step)
            hi = max(lo + 1, int((column + 1) * step))
            chunk = values[lo:hi]
            sampled.append(sum(chunk) / float(len(chunk)))
        values = sampled
    peak = max(values)
    if peak <= 0:
        return " " * width
    glyphs = []
    for value in values:
        level = int(round((len(SPARK_GLYPHS) - 1) * (value / float(peak))))
        glyphs.append(SPARK_GLYPHS[min(max(level, 0), len(SPARK_GLYPHS) - 1)])
    return ("".join(glyphs)).ljust(width)


def _rate(part, whole):
    return 100.0 * part / whole if whole else 0.0


def format_dashboard(source, title="repro top"):
    """Render the ``repro top`` console health dashboard.

    A static, deterministic panel: tier mix, compile/deopt health,
    specialization- and disk-cache hit rates, lane occupancy and IC
    distribution, plus per-snapshot sparklines of the cycle clock and
    the lane depth when a time series was recorded.
    """
    payload = _coerce_payload(source)
    c = payload["counters"]
    g = payload["gauges"]
    lines = []
    lines.append("== %s ==" % title)
    total = g["repro_engine_total_cycles"]
    lines.append(
        "cycles     total %s  (interp %s · native %s · compile-stalled %s · hidden %s)"
        % (
            "{:,}".format(total),
            "{:,}".format(g["repro_engine_interp_cycles"]),
            "{:,}".format(g["repro_engine_native_cycles"]),
            "{:,}".format(g["repro_engine_compile_cycles_stalled"]),
            "{:,}".format(g["repro_engine_compile_cycles_hidden"]),
        )
    )
    interp_calls = c["repro_engine_calls_interp_total"]
    native_calls = c["repro_engine_calls_native_total"]
    all_calls = interp_calls + native_calls
    lines.append(
        "tier mix   %d calls: native %.1f%% · interp %.1f%% · %d OSR entries"
        % (
            all_calls,
            _rate(native_calls, all_calls),
            _rate(interp_calls, all_calls),
            c["repro_engine_osr_enters_total"],
        )
    )
    lines.append(
        "compile    %d compiles (%d OSR, %d recompiles) · queue depth %d (hwm %d) · "
        "installed %d · dropped %d"
        % (
            c["repro_engine_compiles_total"],
            c["repro_engine_osr_compiles_total"],
            c["repro_engine_recompilations_total"],
            g["repro_compile_queue_depth"],
            g["repro_compile_queue_depth_high_water"],
            c["repro_compile_queue_installed_total"],
            c["repro_compile_queue_dropped_total"],
        )
    )
    lines.append(
        "deopt      %d bailouts (%d shape) · %d invalidations · %d retrains"
        % (
            c["repro_engine_bailouts_total"],
            c["repro_engine_shape_guard_bailouts_total"],
            c["repro_engine_invalidations_total"],
            c["repro_engine_retrains_total"],
        )
    )
    spec_hits = c["repro_spec_cache_hits_total"]
    spec_misses = c["repro_spec_cache_misses_total"]
    lines.append(
        "spec cache %d entries · %d hits / %d misses (%.1f%% hit rate) · %d stores"
        % (
            g["repro_spec_cache_entries"],
            spec_hits,
            spec_misses,
            _rate(spec_hits, spec_hits + spec_misses),
            c["repro_spec_cache_stores_total"],
        )
    )
    disk_hits = c["repro_cache_disk_hits_total"]
    disk_misses = c["repro_cache_disk_misses_total"]
    lines.append(
        "disk cache %d hits / %d misses (%.1f%% hit rate) · %d stores · "
        "%d evictions · %d corrupt"
        % (
            disk_hits,
            disk_misses,
            _rate(disk_hits, disk_hits + disk_misses),
            c["repro_cache_disk_stores_total"],
            c["repro_cache_disk_evictions_total"],
            c["repro_cache_disk_corrupt_total"],
        )
    )
    lines.append(
        "IC sites   mono %d · poly %d · mega %d · %d transitions"
        % (
            g["repro_engine_ic_sites_mono"],
            g["repro_engine_ic_sites_poly"],
            g["repro_engine_ic_sites_mega"],
            c["repro_engine_ic_transitions_total"],
        )
    )
    snapshots = payload.get("snapshots") or []
    if len(snapshots) > 1:
        deltas = []
        previous = 0
        for snap in snapshots:
            deltas.append(snap["gauges"]["repro_engine_total_cycles"] - previous)
            previous = snap["gauges"]["repro_engine_total_cycles"]
        depths = [snap["gauges"]["repro_compile_queue_depth"] for snap in snapshots]
        lines.append(
            "cycle rate %s (%d snapshots)" % (sparkline(deltas), len(snapshots))
        )
        lines.append("lane depth %s" % sparkline(depths))
    return "\n".join(lines)
