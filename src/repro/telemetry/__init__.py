"""Telemetry: the measurement apparatus behind the paper's Section 2
histograms and the Section 4 code-size study, plus the structured JIT
event tracer ("spew") documented in docs/TRACING.md."""

from repro.telemetry.histograms import (
    CallProfiler,
    histogram,
    percent_histogram,
    type_distribution,
)
from repro.telemetry.codesize import CodeSizeReport
from repro.telemetry.metrics import (
    METRIC_NAMES,
    METRIC_SCHEMA,
    MetricsRegistry,
    empty_payload,
    format_dashboard,
    merge_payloads,
    snapshots_to_jsonl,
    to_prometheus,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.telemetry.tracing import (
    CHANNELS,
    EVENT_SCHEMA,
    Tracer,
    format_timeline,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CallProfiler",
    "histogram",
    "percent_histogram",
    "type_distribution",
    "CodeSizeReport",
    "METRIC_NAMES",
    "METRIC_SCHEMA",
    "MetricsRegistry",
    "empty_payload",
    "format_dashboard",
    "merge_payloads",
    "snapshots_to_jsonl",
    "to_prometheus",
    "write_metrics_jsonl",
    "write_prometheus",
    "CHANNELS",
    "EVENT_SCHEMA",
    "Tracer",
    "format_timeline",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
