"""Telemetry: the measurement apparatus behind the paper's Section 2
histograms and the Section 4 code-size study."""

from repro.telemetry.histograms import (
    CallProfiler,
    histogram,
    percent_histogram,
    type_distribution,
)
from repro.telemetry.codesize import CodeSizeReport

__all__ = [
    "CallProfiler",
    "histogram",
    "percent_histogram",
    "type_distribution",
    "CodeSizeReport",
]
