"""MIR value types.

``VALUE`` is the boxed "anything" type (IonMonkey's ``Value``); the
others are unboxed representations produced by type specialization.
The int32/double split mirrors IonMonkey's numeric representation
choice (paper §3: "If the IonMonkey compiler infers that a numeric
variable is an integer, then this type is used to compile that
variable, instead of the more expensive floating point type").
"""

from repro.jsvm.objects import JSArray, JSObject
from repro.jsvm.values import (
    NULL,
    UNDEFINED,
    JSFunction,
    NativeFunction,
    is_int32,
)


class MIRType(object):
    """Enumeration of MIR value types."""

    VALUE = "Value"  # boxed, unknown runtime type
    INT32 = "Int32"
    DOUBLE = "Double"
    BOOLEAN = "Boolean"
    STRING = "String"
    OBJECT = "Object"  # plain JSObject (not array)
    ARRAY = "Array"
    FUNCTION = "Function"
    UNDEFINED = "Undefined"
    NULL = "Null"

    ALL = (VALUE, INT32, DOUBLE, BOOLEAN, STRING, OBJECT, ARRAY, FUNCTION, UNDEFINED, NULL)

    #: Types a specialized numeric instruction can consume.
    NUMERIC = (INT32, DOUBLE)


#: Map from telemetry type tags (``repro.jsvm.values.type_tag``) to MIRType.
_TAG_TO_MIRTYPE = {
    "int": MIRType.INT32,
    "double": MIRType.DOUBLE,
    "bool": MIRType.BOOLEAN,
    "string": MIRType.STRING,
    "object": MIRType.OBJECT,
    "array": MIRType.ARRAY,
    "function": MIRType.FUNCTION,
    "undefined": MIRType.UNDEFINED,
    "null": MIRType.NULL,
}


def tag_to_mirtype(tag):
    """Convert a profiler type tag to the MIRType it unboxes to."""
    return _TAG_TO_MIRTYPE[tag]


def mirtype_of_value(value):
    """The precise MIRType of a concrete guest value."""
    t = type(value)
    if t is bool:
        return MIRType.BOOLEAN
    if t is int:
        if is_int32(value):
            return MIRType.INT32
        return MIRType.DOUBLE
    if t is float:
        return MIRType.DOUBLE
    if t is str:
        return MIRType.STRING
    if value is UNDEFINED:
        return MIRType.UNDEFINED
    if value is NULL:
        return MIRType.NULL
    if isinstance(value, (JSFunction, NativeFunction)):
        return MIRType.FUNCTION
    if isinstance(value, JSArray):
        return MIRType.ARRAY
    if isinstance(value, JSObject):
        return MIRType.OBJECT
    raise TypeError("not a guest value: %r" % (value,))


def value_matches_mirtype(value, mirtype):
    """Runtime check used by unbox guards in the native executor."""
    if mirtype == MIRType.VALUE:
        return True
    return mirtype_of_value(value) == mirtype
