"""MIR structural invariant checker.

Run after construction and after each optimization pass in tests; any
violation is a bug in this package (:class:`CompilerError`), never in
the guest program.
"""

from repro.errors import CompilerError


def verify_graph(graph):
    """Check SSA/CFG invariants; raises :class:`CompilerError` on failure."""
    block_set = {id(block) for block in graph.blocks}
    defined = set()

    for block in graph.blocks:
        if block.terminator is None:
            raise CompilerError("block B%d has no terminator" % block.id)
        for instruction in block.instructions[:-1]:
            if instruction.is_control:
                raise CompilerError(
                    "control instruction %r in the middle of B%d" % (instruction, block.id)
                )
        for phi in block.phis:
            if len(phi.operands) != len(block.predecessors):
                raise CompilerError(
                    "phi %r in B%d has %d operands for %d predecessors"
                    % (phi, block.id, len(phi.operands), len(block.predecessors))
                )
        for successor in block.successors:
            if id(successor) not in block_set:
                raise CompilerError(
                    "B%d branches to a block not in the graph" % block.id
                )
            if block not in successor.predecessors:
                raise CompilerError(
                    "B%d -> B%d edge missing from predecessor list"
                    % (block.id, successor.id)
                )
        for predecessor in block.predecessors:
            if id(predecessor) not in block_set:
                raise CompilerError(
                    "B%d has predecessor outside the graph" % block.id
                )
            if block not in predecessor.successors:
                raise CompilerError(
                    "B%d lists B%d as predecessor but there is no edge"
                    % (block.id, predecessor.id)
                )

    # Def-use symmetry.
    for block in graph.blocks:
        for instruction in list(block.phis) + block.instructions:
            defined.add(id(instruction))
    for block in graph.blocks:
        for instruction in list(block.phis) + block.instructions:
            for operand in instruction.operands:
                if id(operand) not in defined:
                    raise CompilerError(
                        "%r uses %r which is not defined in the graph"
                        % (instruction, operand)
                    )
                if not any(c is instruction for c, _ in operand.uses):
                    raise CompilerError(
                        "use of v%d by v%d is not registered"
                        % (operand.id, instruction.id)
                    )
            if instruction.resume_point is not None:
                for operand in instruction.resume_point.operands:
                    if id(operand) not in defined:
                        raise CompilerError(
                            "resume point of %r references undefined value" % instruction
                        )
    return True


def verify_dominance(graph):
    """Check that every definition dominates its uses.

    Phi operands must dominate the end of the corresponding
    predecessor block.  Resume-point operands are checked only on
    guards: a non-guard's resume point is inert metadata and LICM may
    legitimately hoist the instruction away from it.
    """
    from repro.opts.dominators import DominatorTree

    tree = DominatorTree(graph)
    positions = {}
    for block in graph.blocks:
        for index, instruction in enumerate(block.instructions):
            positions[id(instruction)] = (block, index)
        for phi in block.phis:
            positions[id(phi)] = (block, -1)  # phis precede instructions

    def dominates_use(value, use_block, use_position):
        value_block, value_position = positions.get(id(value), (None, None))
        if value_block is None:
            raise CompilerError("use of value not present in graph: %r" % value)
        if value_block is use_block:
            return value_position < use_position
        return tree.dominates(value_block, use_block)

    for block in graph.blocks:
        for phi in block.phis:
            for index, operand in enumerate(phi.operands):
                predecessor = block.predecessors[index]
                # The operand must be available at the predecessor's end.
                if not dominates_use(operand, predecessor, len(predecessor.instructions)):
                    raise CompilerError(
                        "phi %r operand v%d does not dominate predecessor B%d"
                        % (phi, operand.id, predecessor.id)
                    )
        for index, instruction in enumerate(block.instructions):
            for operand in instruction.operands:
                if not dominates_use(operand, block, index):
                    raise CompilerError(
                        "%r uses v%d which does not dominate it" % (instruction, operand.id)
                    )
            if instruction.is_guard and instruction.resume_point is not None:
                for operand in instruction.resume_point.operands:
                    if not dominates_use(operand, block, index):
                        raise CompilerError(
                            "guard %r resume operand v%d does not dominate it"
                            % (instruction, operand.id)
                        )
    return True
