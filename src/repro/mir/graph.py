"""The MIR control-flow graph.

A graph has one *function entry* block and, optionally, one *OSR
(on-stack replacement) entry* block — the two entry points of the
paper's Figure 6.  Blocks hold phis (aligned with the predecessor
list) followed by instructions, the last of which is a control
instruction.
"""

from repro.errors import CompilerError
from repro.mir.instructions import MPhi


class MBasicBlock(object):
    """One basic block: phis, body instructions, and a terminator."""

    __slots__ = ("id", "graph", "phis", "instructions", "predecessors", "loop_depth")

    def __init__(self, graph, block_id):
        self.graph = graph
        self.id = block_id
        self.phis = []
        self.instructions = []
        self.predecessors = []
        self.loop_depth = 0

    # -- structure ----------------------------------------------------------

    @property
    def terminator(self):
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    @property
    def successors(self):
        terminator = self.terminator
        return list(terminator.successors) if terminator is not None else []

    def add_phi(self, phi):
        phi.block = self
        self.graph.assign_id(phi)
        self.phis.append(phi)
        return phi

    def append(self, instruction):
        instruction.block = self
        self.graph.assign_id(instruction)
        self.instructions.append(instruction)
        return instruction

    def insert_before(self, anchor, instruction):
        instruction.block = self
        self.graph.assign_id(instruction)
        self.instructions.insert(self.instructions.index(anchor), instruction)
        return instruction

    def remove_instruction(self, instruction):
        instruction.release_operands()
        self.instructions.remove(instruction)
        instruction.block = None

    def remove_phi(self, phi):
        phi.release_operands()
        self.phis.remove(phi)
        phi.block = None

    # -- predecessor/phi bookkeeping ---------------------------------------

    def add_predecessor(self, predecessor):
        """Register an incoming edge; phis must gain a matching operand."""
        self.predecessors.append(predecessor)

    def remove_predecessor(self, predecessor):
        """Drop an incoming edge, trimming every phi's matching operand."""
        index = self.predecessors.index(predecessor)
        self.predecessors.pop(index)
        for phi in self.phis:
            operand = phi.operands[index]
            operand.remove_use(phi, index)
            phi.operands.pop(index)
            # Re-register the remaining uses with shifted indices.
            for later_index in range(index, len(phi.operands)):
                phi.operands[later_index].remove_use(phi, later_index + 1)
                phi.operands[later_index].add_use(phi, later_index)

    def __repr__(self):
        return "<Block B%d (%d phis, %d instrs)>" % (self.id, len(self.phis), len(self.instructions))


class MIRGraph(object):
    """A whole function's MIR: blocks plus entry metadata."""

    def __init__(self, code):
        self.code = code
        self.blocks = []
        self.entry = None
        self.osr_entry = None
        #: Bytecode pc of the OSR loop header, if compiled with OSR.
        self.osr_pc = None
        self._next_block_id = 0
        self._next_def_id = 0
        #: Set True by the parameter-specialization pass; telemetry uses it.
        self.specialized = False
        #: Argument values baked in by specialization (for the cache).
        self.specialized_args = None

    # -- construction ----------------------------------------------------------

    def new_block(self):
        block = MBasicBlock(self, self._next_block_id)
        self._next_block_id += 1
        self.blocks.append(block)
        return block

    def assign_id(self, definition):
        if definition.id == -1:
            definition.id = self._next_def_id
            self._next_def_id += 1

    # -- traversal ----------------------------------------------------------------

    def entries(self):
        result = [self.entry]
        if self.osr_entry is not None:
            result.append(self.osr_entry)
        return result

    def reverse_postorder(self):
        """Blocks in reverse postorder from all entries."""
        visited = set()
        order = []

        for root in self.entries():
            stack = [(root, iter(root.successors))]
            if root.id in visited:
                continue
            visited.add(root.id)
            while stack:
                block, successor_iter = stack[-1]
                advanced = False
                for successor in successor_iter:
                    if successor.id not in visited:
                        visited.add(successor.id)
                        stack.append((successor, iter(successor.successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(block)
                    stack.pop()
        order.reverse()
        return order

    def reachable_blocks(self):
        return set(block.id for block in self.reverse_postorder())

    def all_instructions(self):
        """Iterate every phi and instruction in every block."""
        for block in self.blocks:
            for phi in block.phis:
                yield phi
            for instruction in block.instructions:
                yield instruction

    def num_instructions(self):
        return sum(len(block.phis) + len(block.instructions) for block in self.blocks)

    def num_guards(self):
        """Count instructions that may bail out (the pass-trace metric)."""
        return sum(
            1
            for block in self.blocks
            for instruction in block.instructions
            if instruction.is_guard
        )

    # -- surgery ---------------------------------------------------------------------

    def remove_block(self, block):
        """Delete an unreachable block, fixing successors' phi inputs."""
        for successor in block.successors:
            if block in successor.predecessors:
                successor.remove_predecessor(block)
        for phi in list(block.phis):
            block.remove_phi(phi)
        for instruction in list(block.instructions):
            block.remove_instruction(instruction)
        self.blocks.remove(block)

    def compact(self):
        """Remove all blocks unreachable from the entries."""
        reachable = self.reachable_blocks()
        removed = 0
        # Iterate until stable: removing a block may orphan another.
        changed = True
        while changed:
            changed = False
            for block in list(self.blocks):
                if block.id not in reachable and block is not self.entry:
                    self.remove_block(block)
                    removed += 1
                    changed = True
            if changed:
                reachable = self.reachable_blocks()
        return removed

    def verify_no_dangling(self):
        """Debug helper: check operand/use symmetry across the graph."""
        block_ids = set(block.id for block in self.blocks)
        for instruction in self.all_instructions():
            for operand in instruction.operands:
                if operand.block is not None and operand.block.id not in block_ids:
                    raise CompilerError(
                        "instruction %r uses value from removed block" % instruction
                    )

    def __repr__(self):
        return "<MIRGraph %s (%d blocks, %d defs)>" % (
            self.code.name,
            len(self.blocks),
            self._next_def_id,
        )
