"""Baseline type specialization of generic MIR.

IonMonkey compiles *typed* code: numeric variables proven int32 use
integer instructions, array accesses become bounds-check + raw element
moves, and so on (paper §3: type specialization is the speculation
IonMonkey already performs; our value specialization builds on top).

This pass runs after graph construction, always — it is part of the
baseline compiler, not one of the paper's configurable optimizations:

1. A fixpoint computes the post-specialization type of every value,
   optimistically for phis (loop counters converge to Int32 when their
   inputs all will be Int32).
2. Generic instructions whose operand types allow it are rewritten to
   specialized forms: ``binary_v`` → ``arith_i``/``arith_d``/
   ``concat``/``compare``, ``getelem_v`` → ``boundscheck`` +
   ``loadelement``, property loads of ``length`` → length reads, etc.

Specialized integer arithmetic carries overflow guards; the guards'
resume points were attached when the generic instructions were built
and are inherited by their replacements.
"""

from repro.jsvm.bytecode import Op
from repro.mir.instructions import (
    MArrayLength,
    MBinaryArithD,
    MBinaryArithI,
    MBinaryV,
    MBitOpI,
    MBoundsCheck,
    MCompare,
    MConcat,
    MGetElemV,
    MGetPropV,
    MLoadElement,
    MNegD,
    MNegI,
    MNot,
    MPhi,
    MSetElemV,
    MSetPropV,
    MStoreElement,
    MStringLength,
    MToDouble,
    MToInt32,
    MTypeOf,
    MUnaryV,
    MLoadProperty,
    MStoreProperty,
)
from repro.mir.types import MIRType

_ARITH = (Op.ADD, Op.SUB, Op.MUL)
_DIVMOD = (Op.DIV, Op.MOD)
_BITOPS = (Op.BITAND, Op.BITOR, Op.BITXOR, Op.SHL, Op.SHR)
_RELATIONAL = (Op.LT, Op.LE, Op.GT, Op.GE)
_EQUALITY = (Op.EQ, Op.NE, Op.STRICTEQ, Op.STRICTNE)
_NUMERIC = (MIRType.INT32, MIRType.DOUBLE)


def _would_be_binary(op, lhs_type, rhs_type):
    """Result type of a binary op after specialization (VALUE = generic).

    ``None`` operand types mean "not yet computed" during the
    optimistic fixpoint; the result stays unknown rather than
    pessimizing (loop-carried values resolve on a later iteration).
    """
    if op in _RELATIONAL or op in _EQUALITY:
        return MIRType.BOOLEAN
    if lhs_type is None or rhs_type is None:
        return None
    if op in _ARITH:
        if lhs_type == MIRType.INT32 and rhs_type == MIRType.INT32:
            return MIRType.INT32
        if lhs_type in _NUMERIC and rhs_type in _NUMERIC:
            return MIRType.DOUBLE
        if op == Op.ADD and lhs_type == MIRType.STRING and rhs_type == MIRType.STRING:
            return MIRType.STRING
        return MIRType.VALUE
    if op in _DIVMOD:
        if lhs_type in _NUMERIC and rhs_type in _NUMERIC:
            return MIRType.DOUBLE
        return MIRType.VALUE
    if op in _BITOPS or op == Op.USHR:
        if lhs_type in _NUMERIC and rhs_type in _NUMERIC:
            return MIRType.INT32
        return MIRType.VALUE
    return MIRType.VALUE


def _would_be_unary(op, operand_type):
    if operand_type is None:
        return None
    if op == Op.NEG:
        if operand_type == MIRType.INT32:
            return MIRType.INT32
        if operand_type == MIRType.DOUBLE:
            return MIRType.DOUBLE
        return MIRType.VALUE
    if op in (Op.POS, Op.TONUM):
        if operand_type in _NUMERIC:
            return operand_type
        return MIRType.VALUE
    if op == Op.BITNOT:
        if operand_type in _NUMERIC:
            return MIRType.INT32
        return MIRType.VALUE
    return MIRType.VALUE


def _join(types):
    """Phi type join: equal types meet to themselves, numerics widen."""
    result = None
    for mirtype in types:
        if mirtype is None:
            continue  # optimistic: unvisited input doesn't pessimize
        if result is None:
            result = mirtype
        elif result != mirtype:
            if result in _NUMERIC and mirtype in _NUMERIC:
                result = MIRType.DOUBLE
            else:
                return MIRType.VALUE
    return result


class TypeSpecializer(object):
    """Runs the two phases described in the module docstring."""

    def __init__(self, graph):
        self.graph = graph
        # Keyed by the definition objects themselves (identity hash).
        # Never key this map by id(): instructions deleted during the
        # rewrite phase would free their addresses for reuse by new
        # instructions, which would then inherit stale types.  Object
        # keys also pin the keys alive for the map's lifetime.
        self.types = {}

    # -- phase 1: type fixpoint -------------------------------------------------

    def type_of(self, definition):
        cached = self.types.get(definition)
        if cached is not None:
            return cached
        return definition.type

    def compute_types(self):
        blocks = self.graph.reverse_postorder()
        # Optimistic initialization for phis and for the generic
        # instructions whose type depends on their (possibly
        # loop-carried) operands.
        for block in blocks:
            for phi in block.phis:
                self.types[phi] = None
            for instruction in block.instructions:
                if isinstance(instruction, (MBinaryV, MUnaryV)):
                    self.types[instruction] = None
        changed = True
        while changed:
            changed = False
            for block in blocks:
                for phi in block.phis:
                    new_type = _join(self._operand_type(op) for op in phi.operands)
                    if new_type != self.types[phi]:
                        self.types[phi] = new_type
                        changed = True
                for instruction in block.instructions:
                    new_type = self._instruction_type(instruction)
                    if self.types.get(instruction) != new_type:
                        self.types[instruction] = new_type
                        changed = True
        # Pessimize anything left optimistic (unreachable cycles).
        for key, value in list(self.types.items()):
            if value is None:
                self.types[key] = MIRType.VALUE

    def _operand_type(self, operand):
        return self.types.get(operand, operand.type)

    def _instruction_type(self, instruction):
        if isinstance(instruction, MBinaryV):
            return _would_be_binary(
                instruction.op,
                self._operand_type(instruction.operands[0]),
                self._operand_type(instruction.operands[1]),
            )
        if isinstance(instruction, MUnaryV):
            return _would_be_unary(
                instruction.op, self._operand_type(instruction.operands[0])
            )
        return instruction.type

    # -- phase 2: rewriting ----------------------------------------------------------

    def simplify_guards(self):
        """Remove barriers/unboxes whose operand is already typed.

        After parameter specialization or inlining, a guard may sit on
        a value the compiler has *proved* has the expected type (e.g. a
        constant, or an int32 arithmetic result): the check can never
        fail and IonMonkey would not emit it at all.
        """
        from repro.mir.instructions import MTypeBarrier, MUnbox

        removed = 0
        for block in list(self.graph.blocks):
            for instruction in list(block.instructions):
                if isinstance(instruction, MUnbox):
                    expected = instruction.type
                elif isinstance(instruction, MTypeBarrier):
                    expected = instruction.expected
                else:
                    continue
                operand = instruction.operands[0]
                operand_type = self.type_of(operand)
                proven = operand_type == expected or (
                    expected == MIRType.DOUBLE and operand_type == MIRType.INT32
                )
                if proven:
                    instruction.replace_all_uses_with(operand)
                    block.remove_instruction(instruction)
                    removed += 1
        return removed

    def run(self):
        self.compute_types()
        for block in list(self.graph.blocks):
            for instruction in list(block.instructions):
                if isinstance(instruction, MBinaryV):
                    self._rewrite_binary(block, instruction)
                elif isinstance(instruction, MUnaryV):
                    self._rewrite_unary(block, instruction)
                elif isinstance(instruction, MGetElemV):
                    self._rewrite_getelem(block, instruction)
                elif isinstance(instruction, MSetElemV):
                    self._rewrite_setelem(block, instruction)
                elif isinstance(instruction, MGetPropV):
                    self._rewrite_getprop(block, instruction)
                elif isinstance(instruction, MSetPropV):
                    self._rewrite_setprop(block, instruction)
        # Finalize phi types.
        for block in self.graph.blocks:
            for phi in block.phis:
                phi.type = self.types.get(phi, MIRType.VALUE)
        self.simplify_guards()
        return self.graph

    # -- helpers ------------------------------------------------------------------------

    def _replace(self, block, old, new_instructions, result):
        """Insert replacements before ``old``, rewire uses, remove ``old``.

        The last resume point travels: the primary replacement (the one
        flagged ``inherit_resume``) inherits ``old``'s resume point.
        """
        for new_instruction in new_instructions:
            block.insert_before(old, new_instruction)
        if result is not None:
            old.replace_all_uses_with(result)
        block.remove_instruction(old)

    def _widen(self, block, anchor, definition):
        """Ensure a numeric value is double-typed, inserting todouble."""
        if self.type_of(definition) == MIRType.DOUBLE:
            return definition
        widen = MToDouble(definition)
        block.insert_before(anchor, widen)
        return widen

    def _trunc(self, block, anchor, definition):
        """Ensure a numeric value is int32-typed, inserting toint32."""
        if self.type_of(definition) == MIRType.INT32:
            return definition
        trunc = MToInt32(definition)
        block.insert_before(anchor, trunc)
        return trunc

    def _move_resume(self, old, new):
        resume = old.resume_point
        if resume is not None:
            old.resume_point = None
            new.attach_resume_point(resume)

    # -- binary ------------------------------------------------------------------------------

    def _rewrite_binary(self, block, instruction):
        op = instruction.op
        lhs, rhs = instruction.operands
        lhs_type = self.type_of(lhs)
        rhs_type = self.type_of(rhs)
        result_type = _would_be_binary(op, lhs_type, rhs_type)

        if op in _ARITH and result_type == MIRType.INT32:
            new = MBinaryArithI(op, lhs, rhs)
        elif op in _ARITH and result_type == MIRType.DOUBLE:
            new = MBinaryArithD(
                op,
                self._widen(block, instruction, lhs),
                self._widen(block, instruction, rhs),
            )
        elif op == Op.ADD and result_type == MIRType.STRING:
            new = MConcat(lhs, rhs)
        elif op in _DIVMOD and result_type == MIRType.DOUBLE:
            new = MBinaryArithD(
                op,
                self._widen(block, instruction, lhs),
                self._widen(block, instruction, rhs),
            )
        elif (op in _BITOPS or op == Op.USHR) and result_type == MIRType.INT32:
            new = MBitOpI(
                op,
                self._trunc(block, instruction, lhs),
                self._trunc(block, instruction, rhs),
                is_guard=(op == Op.USHR),
            )
        elif op in _RELATIONAL or op in _EQUALITY:
            kind = self._compare_kind(op, lhs_type, rhs_type)
            if kind is None:
                return
            if kind == "d":
                new = MCompare(
                    op,
                    kind,
                    self._widen(block, instruction, lhs),
                    self._widen(block, instruction, rhs),
                )
            else:
                new = MCompare(op, kind, lhs, rhs)
        else:
            return
        self._move_resume(instruction, new)
        self._replace(block, instruction, [new], new)

    @staticmethod
    def _compare_kind(op, lhs_type, rhs_type):
        if lhs_type == MIRType.INT32 and rhs_type == MIRType.INT32:
            return "i"
        if lhs_type == MIRType.BOOLEAN and rhs_type == MIRType.BOOLEAN:
            return "i"
        if lhs_type in _NUMERIC and rhs_type in _NUMERIC:
            return "d"
        if lhs_type == MIRType.STRING and rhs_type == MIRType.STRING:
            return "s"
        return None

    # -- unary ------------------------------------------------------------------------------------

    def _rewrite_unary(self, block, instruction):
        op = instruction.op
        operand = instruction.operands[0]
        operand_type = self.type_of(operand)
        if op == Op.NEG and operand_type == MIRType.INT32:
            new = MNegI(operand)
        elif op == Op.NEG and operand_type == MIRType.DOUBLE:
            new = MNegD(operand)
        elif op in (Op.POS, Op.TONUM) and operand_type in _NUMERIC:
            # ToNumber of a number is the identity.
            instruction.replace_all_uses_with(operand)
            block.remove_instruction(instruction)
            return
        elif op == Op.BITNOT and operand_type in _NUMERIC:
            minus_one = None
            from repro.mir.instructions import MConstant

            minus_one = MConstant(-1)
            block.insert_before(instruction, minus_one)
            new = MBitOpI(Op.BITXOR, self._trunc(block, instruction, operand), minus_one)
        else:
            return
        self._move_resume(instruction, new)
        self._replace(block, instruction, [new], new)

    # -- element access -----------------------------------------------------------------------------

    def _rewrite_getelem(self, block, instruction):
        receiver, index = instruction.operands
        if self.type_of(receiver) != MIRType.ARRAY or self.type_of(index) != MIRType.INT32:
            return
        length = MArrayLength(receiver)
        check = MBoundsCheck(index, length)
        self._move_resume(instruction, check)  # out-of-bounds re-runs GETELEM
        load = MLoadElement(receiver, index)
        self._replace(block, instruction, [length, check, load], load)

    def _rewrite_setelem(self, block, instruction):
        receiver, index, value = instruction.operands
        if self.type_of(receiver) != MIRType.ARRAY or self.type_of(index) != MIRType.INT32:
            return
        length = MArrayLength(receiver)
        check = MBoundsCheck(index, length)
        self._move_resume(instruction, check)  # growing store bails out
        store = MStoreElement(receiver, index, value)
        self._replace(block, instruction, [length, check, store], None)

    # -- property access -------------------------------------------------------------------------------

    def _rewrite_getprop(self, block, instruction):
        receiver = instruction.operands[0]
        receiver_type = self.type_of(receiver)
        name = instruction.name
        if name == "length" and receiver_type == MIRType.ARRAY:
            new = MArrayLength(receiver)
        elif name == "length" and receiver_type == MIRType.STRING:
            new = MStringLength(receiver)
        elif receiver_type == MIRType.OBJECT:
            new = MLoadProperty(receiver, name)
        else:
            return
        self._move_resume(instruction, new)
        self._replace(block, instruction, [new], new)

    def _rewrite_setprop(self, block, instruction):
        receiver, value = instruction.operands
        if self.type_of(receiver) != MIRType.OBJECT:
            return
        new = MStoreProperty(receiver, value, instruction.name)
        self._move_resume(instruction, new)
        self._replace(block, instruction, [new], None)


def specialize_types(graph):
    """Run baseline type specialization on ``graph`` (in place)."""
    return TypeSpecializer(graph).run()
