"""Bytecode → MIR (SSA) graph construction.

The builder abstractly interprets the stack bytecode, turning stack
slots, argument slots and local slots into SSA values.  Every basic
block gets a full complement of phis (maximal SSA); a trivial-phi
simplification afterwards prunes the redundant ones.

Three features of the paper's system live here:

* **Parameter specialization (§3.2)** — when ``param_values`` is
  given, the builder creates :class:`MConstant` nodes holding the
  actual runtime arguments *instead of* :class:`MParameter` nodes, in
  both the function entry block and the OSR block.  As in the paper,
  this happens while the graph is built and therefore costs nothing.
* **Two entry points (Figure 6)** — the function entry block and the
  on-stack-replacement block, the latter created when the compilation
  was triggered by a hot loop back edge.
* **Type speculation** — monomorphic type feedback becomes
  ``typebarrier`` + ``unbox`` guard chains on parameters, loads and
  call results, mirroring IonMonkey's use of type inference.

Functions that capture or provide closure variables are rejected with
:class:`~repro.errors.NotCompilable` and stay interpreted (see
DESIGN.md, "Honest limits").
"""

from repro.errors import CompilerError, NotCompilable
from repro.jsvm.bytecode import JUMP_OPS, Op, is_binary_op, is_unary_op
from repro.jsvm.values import UNDEFINED
from repro.mir.graph import MIRGraph
from repro.mir.instructions import (
    MCall,
    MCheckOverRecursed,
    MConstant,
    MGetElemV,
    MGetPropV,
    MGoto,
    MGuardShape,
    MLambda,
    MLoadGlobal,
    MLoadProperty,
    MNew,
    MNewArray,
    MNewObject,
    MNot,
    MOsrValue,
    MParameter,
    MPhi,
    MReturn,
    MSelf,
    MSetElemV,
    MSetPropV,
    MStoreGlobal,
    MStoreProperty,
    MTest,
    MTypeBarrier,
    MTypeOf,
    MUnaryV,
    MUnbox,
    MBinaryV,
    ResumePoint,
)
from repro.mir.types import MIRType, tag_to_mirtype

#: MIR types a feedback tag may be unboxed to.
_UNBOXABLE = frozenset(
    [
        MIRType.INT32,
        MIRType.DOUBLE,
        MIRType.BOOLEAN,
        MIRType.STRING,
        MIRType.ARRAY,
        MIRType.OBJECT,
        MIRType.FUNCTION,
    ]
)

_NOT_COMPILABLE_OPS = frozenset(
    [Op.GETCELL, Op.SETCELL, Op.GETFREE, Op.SETFREE, Op.DELPROP]
)


class _State(object):
    """Abstract frame state: SSA values for args, locals and the stack."""

    __slots__ = ("args", "locals", "stack")

    def __init__(self, args, locals_, stack):
        self.args = args
        self.locals = locals_
        self.stack = stack

    def copy(self):
        return _State(list(self.args), list(self.locals), list(self.stack))


class _BlockInfo(object):
    """Bookkeeping for one bytecode-leader basic block."""

    __slots__ = ("block", "entry_state", "phis", "processed")

    def __init__(self, block, entry_state, phis):
        self.block = block
        self.entry_state = entry_state
        self.phis = phis  # flat list aligned with args+locals+stack
        self.processed = False


class MIRBuilder(object):
    """Builds one function's MIR graph from its bytecode."""

    def __init__(
        self,
        code,
        feedback=None,
        param_values=None,
        this_value=None,
        osr_pc=None,
        osr_args=None,
        osr_locals=None,
        generic=False,
        shape_guards=True,
    ):
        if code.has_frees or code.has_cells:
            raise NotCompilable("%s uses closure variables" % code.name)
        self.code = code
        self.feedback = feedback
        self.param_values = param_values
        self.this_value = this_value
        self.osr_pc = osr_pc
        self.osr_args = osr_args
        self.osr_locals = osr_locals
        self.generic = generic
        #: When False, property ops ignore the shape ICs and compile to
        #: their generic (guard-free) forms while value/type speculation
        #: stays on — the "widened" shape of a deoptless generalized
        #: sibling (docs/DEOPTLESS.md).
        self.shape_guards = shape_guards
        self.graph = MIRGraph(code)
        self.block_infos = {}
        self.queue = []
        self.current = None  # current MIR block during simulation
        self.leaders = self._find_leaders()

    # -- leaders ----------------------------------------------------------------

    def _find_leaders(self):
        instructions = self.code.instructions
        leaders = set([0])
        for index, instr in enumerate(instructions):
            if instr.op in JUMP_OPS:
                leaders.add(instr.arg)
                if index + 1 < len(instructions):
                    leaders.add(index + 1)
            elif instr.op in (Op.RETURN, Op.RETURN_UNDEF):
                if index + 1 < len(instructions):
                    leaders.add(index + 1)
        if self.osr_pc is not None:
            leaders.add(self.osr_pc)
        return leaders

    def _block_end(self, start):
        """First pc after ``start`` that begins a new block (or len)."""
        instructions = self.code.instructions
        pc = start + 1
        while pc < len(instructions) and pc not in self.leaders:
            pc += 1
        return pc

    # -- emission helpers ----------------------------------------------------------

    def emit(self, instruction):
        self.current.append(instruction)
        return instruction

    def make_resume(self, pc, mode, state):
        return ResumePoint(pc, mode, state.args, state.locals, state.stack)

    def constant(self, value):
        return self.emit(MConstant(value))

    # -- type speculation ------------------------------------------------------------

    def speculate_result(self, definition, pc, state_after):
        """Wrap a boxed result in barrier+unbox guards per feedback."""
        if self.generic or self.feedback is None:
            return definition
        tag = self.feedback.site_speculation(pc)
        if tag is None:
            return definition
        mirtype = tag_to_mirtype(tag)
        if mirtype not in _UNBOXABLE:
            return definition
        barrier = MTypeBarrier(definition, mirtype)
        barrier.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AFTER, state_after))
        self.emit(barrier)
        unbox = MUnbox(barrier, mirtype)
        unbox.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AFTER, state_after))
        self.emit(unbox)
        return unbox

    def speculate_receiver(self, definition, pc, state_before):
        """Unbox an access receiver to its observed type when boxed."""
        if definition.type != MIRType.VALUE or self.generic or self.feedback is None:
            return definition
        tag = self.feedback.recv_speculation(pc)
        if tag is None:
            return definition
        mirtype = tag_to_mirtype(tag)
        if mirtype not in (MIRType.ARRAY, MIRType.OBJECT, MIRType.STRING):
            return definition
        unbox = MUnbox(definition, mirtype)
        unbox.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AT, state_before))
        self.emit(unbox)
        return unbox

    def _ic_shape_ids(self, pc, receiver):
        """The property site's cached receiver shapes, or ``()``.

        Non-empty only when speculation is on, the receiver is known to
        be a plain OBJECT (unboxed by :meth:`speculate_receiver` or an
        object allocation), and the site's inline cache is mono- or
        polymorphic — megamorphic and unvisited sites stay generic.
        """
        if self.generic or not self.shape_guards or self.feedback is None:
            return ()
        if receiver.type != MIRType.OBJECT:
            return ()
        return self.feedback.shape_ids(pc)

    def _guard_shape(self, receiver, shape_ids, pc, pre_state):
        """Emit the shape guard protecting a property fast path.

        The resume point re-executes the property bytecode *at* ``pc``:
        the interpreter handler performs the generic access and records
        the offending shape into the IC, so the next recompilation
        either widens the guard (poly) or gives up (mega).
        """
        guard = MGuardShape(receiver, shape_ids)
        guard.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AT, pre_state))
        self.emit(guard)

    # -- entry construction --------------------------------------------------------------

    def build(self):
        graph = self.graph
        code = self.code

        entry = graph.new_block()
        graph.entry = entry
        self.current = entry

        # Parameters (or their specialized constant values, §3.2).
        if self.param_values is not None:
            graph.specialized = True
            graph.specialized_args = list(self.param_values)
            args = [self.emit(MConstant(value)) for value in self.param_values]
            this_def = self.emit(MConstant(self.this_value if self.this_value is not None else UNDEFINED))
        else:
            args = [self.emit(MParameter(index)) for index in range(code.num_params)]
            this_def = self.emit(MParameter(-1))
        locals_ = [self.emit(MConstant(UNDEFINED)) for _ in range(code.num_locals)]
        self.this_def = this_def

        entry_state = _State(args, locals_, [])

        check = MCheckOverRecursed()
        check.attach_resume_point(self.make_resume(0, ResumePoint.MODE_AT, entry_state))
        self.emit(check)

        # Unbox guards on parameters per observed argument types.
        if self.param_values is None and not self.generic and self.feedback is not None:
            typed_args = []
            for index, arg in enumerate(args):
                tag = self.feedback.arg_speculation(index)
                if tag is None:
                    typed_args.append(arg)
                    continue
                mirtype = tag_to_mirtype(tag)
                if mirtype not in _UNBOXABLE:
                    typed_args.append(arg)
                    continue
                unbox = MUnbox(arg, mirtype)
                unbox.attach_resume_point(self.make_resume(0, ResumePoint.MODE_AT, entry_state))
                self.emit(unbox)
                typed_args.append(unbox)
            entry_state = _State(typed_args, list(locals_), [])

        entry_goto = MGoto(None)
        self.emit(entry_goto)
        entry_goto.successors[0] = self._connect(entry, entry_state, 0)

        # The OSR entry block (Figure 6's second entry point).
        if self.osr_pc is not None:
            self._build_osr_entry()

        self._drain_queue()
        self._simplify_phis()
        graph.osr_pc = self.osr_pc
        return graph

    def _build_osr_entry(self):
        graph = self.graph
        code = self.code
        osr_block = graph.new_block()
        graph.osr_entry = osr_block
        self.current = osr_block

        if self.param_values is not None:
            # Specialize OSR inputs too: both the arguments and the
            # current values of the locals (paper Figure 7(a), where
            # the OSR block's i1 becomes the constant 2).
            args = [self.emit(MConstant(value)) for value in self.param_values]
            locals_ = [self.emit(MConstant(value)) for value in self.osr_locals]
        else:
            args = []
            state_stub = None
            raw_args = [self.emit(MOsrValue("arg", index)) for index in range(code.num_params)]
            raw_locals = [self.emit(MOsrValue("local", index)) for index in range(code.num_locals)]
            osr_state = _State(raw_args, raw_locals, [])
            for index, raw in enumerate(raw_args):
                args.append(self._osr_unbox(raw, self.osr_args[index], osr_state))
            locals_ = []
            for index, raw in enumerate(raw_locals):
                locals_.append(self._osr_unbox(raw, self.osr_locals[index], osr_state))
        osr_goto = MGoto(None)
        self.emit(osr_goto)
        osr_goto.successors[0] = self._connect(
            osr_block, _State(args, locals_, []), self.osr_pc
        )

    def _osr_unbox(self, raw, runtime_value, osr_state):
        """Unbox an OSR input to the type of its value at OSR time."""
        if self.generic:
            return raw
        from repro.mir.types import mirtype_of_value

        mirtype = mirtype_of_value(runtime_value)
        if mirtype not in _UNBOXABLE:
            return raw
        unbox = MUnbox(raw, mirtype)
        unbox.attach_resume_point(
            self.make_resume(self.osr_pc, ResumePoint.MODE_AT, osr_state)
        )
        self.emit(unbox)
        return unbox

    # -- CFG plumbing ---------------------------------------------------------------------

    def _connect(self, pred_block, exit_state, target_pc):
        """Wire an edge from ``pred_block`` (with ``exit_state``) to the
        bytecode block starting at ``target_pc``."""
        info = self.block_infos.get(target_pc)
        if info is None:
            block = self.graph.new_block()
            phis = []
            layout = (
                [("arg", i) for i in range(len(exit_state.args))]
                + [("local", i) for i in range(len(exit_state.locals))]
                + [("stack", i) for i in range(len(exit_state.stack))]
            )
            for slot in layout:
                phi = MPhi(MIRType.VALUE, slot)
                block.add_phi(phi)
                phis.append(phi)
            num_args = len(exit_state.args)
            num_locals = len(exit_state.locals)
            entry_state = _State(
                phis[:num_args],
                phis[num_args : num_args + num_locals],
                phis[num_args + num_locals :],
            )
            info = _BlockInfo(block, entry_state, phis)
            self.block_infos[target_pc] = info
            self.queue.append(target_pc)
        flat = exit_state.args + exit_state.locals + exit_state.stack
        if len(flat) != len(info.phis):
            raise CompilerError(
                "inconsistent frame depth entering pc %d of %s"
                % (target_pc, self.code.name)
            )
        info.block.add_predecessor(pred_block)
        for phi, value in zip(info.phis, flat):
            phi.add_input(value)
        return info.block

    def _drain_queue(self):
        while self.queue:
            pc = self.queue.pop(0)
            info = self.block_infos[pc]
            if info.processed:
                continue
            info.processed = True
            self._process_block(pc, info)

    # -- per-block simulation ---------------------------------------------------------------

    def _process_block(self, start_pc, info):
        self.current = info.block
        state = info.entry_state.copy()
        end_pc = self._block_end(start_pc)
        pc = start_pc
        instructions = self.code.instructions
        while pc < end_pc:
            instr = instructions[pc]
            terminated = self._simulate(instr, pc, state)
            if terminated:
                return
            pc += 1
        # Fall through into the next block.
        self.emit(MGoto(None))
        target = self._connect(self.current, state, end_pc)
        self.current.terminator.successors[0] = target

    def _goto(self, state, target_pc):
        goto = MGoto(None)
        self.emit(goto)
        goto.successors[0] = self._connect(self.current, state, target_pc)

    def _test(self, condition, state, true_pc, false_pc):
        if true_pc == false_pc:
            self._goto(state, true_pc)
            return
        test = MTest(condition, None, None)
        self.emit(test)
        test.successors[0] = self._connect(self.current, state, true_pc)
        test.successors[1] = self._connect(self.current, state, false_pc)

    def _simulate(self, instr, pc, state):
        """Simulate one bytecode instruction; True if block terminated."""
        op = instr.op
        code = self.code
        stack = state.stack

        if op in _NOT_COMPILABLE_OPS:
            raise NotCompilable("%s uses %s" % (code.name, op))

        if op == Op.CONST:
            stack.append(self.constant(code.constants[instr.arg]))
        elif op == Op.UNDEF:
            stack.append(self.constant(UNDEFINED))
        elif op == Op.GETARG:
            stack.append(state.args[instr.arg])
        elif op == Op.SETARG:
            state.args[instr.arg] = stack.pop()
        elif op == Op.GETLOCAL:
            stack.append(state.locals[instr.arg])
        elif op == Op.SETLOCAL:
            state.locals[instr.arg] = stack.pop()
        elif op == Op.GETGLOBAL:
            load = MLoadGlobal(code.names[instr.arg])
            self.emit(load)
            stack.append(self.speculate_result(load, pc, state))
        elif op == Op.SETGLOBAL:
            value = stack.pop()
            self.emit(MStoreGlobal(value, code.names[instr.arg]))
        elif op == Op.GETTHIS:
            stack.append(self.this_def)
        elif op == Op.POP:
            stack.pop()
        elif op == Op.DUP:
            stack.append(stack[-1])
        elif op == Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op == Op.NOT:
            stack.append(self.emit(MNot(stack.pop())))
        elif op == Op.TYPEOF:
            stack.append(self.emit(MTypeOf(stack.pop())))
        elif is_unary_op(op):
            operand = stack.pop()
            unary = MUnaryV(op, operand)
            unary.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AFTER, state))
            self.emit(unary)
            stack.append(unary)
        elif is_binary_op(op):
            rhs = stack.pop()
            lhs = stack.pop()
            binary = MBinaryV(op, lhs, rhs)
            binary.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AFTER, state))
            self.emit(binary)
            stack.append(binary)
        elif op == Op.JUMP:
            self._goto(state, instr.arg)
            return True
        elif op == Op.IFFALSE:
            condition = stack.pop()
            self._test(condition, state, pc + 1, instr.arg)
            return True
        elif op == Op.IFTRUE:
            condition = stack.pop()
            self._test(condition, state, instr.arg, pc + 1)
            return True
        elif op == Op.NEWARRAY:
            count = instr.arg
            elements = stack[len(stack) - count :] if count else []
            del stack[len(stack) - count :]
            stack.append(self.emit(MNewArray(elements)))
        elif op == Op.NEWOBJECT:
            count = instr.arg
            flat = stack[len(stack) - 2 * count :] if count else []
            del stack[len(stack) - 2 * count :]
            keys = []
            values = []
            for index in range(count):
                key_def = flat[2 * index]
                if not isinstance(key_def, MConstant):
                    raise CompilerError("object literal key is not constant")
                keys.append(key_def.value)
                values.append(flat[2 * index + 1])
            stack.append(self.emit(MNewObject(keys, values)))
        elif op == Op.GETPROP:
            receiver = stack.pop()
            pre_state = _State(state.args, state.locals, stack + [receiver])
            receiver = self.speculate_receiver(receiver, pc, pre_state)
            name = code.names[instr.arg]
            shape_ids = self._ic_shape_ids(pc, receiver)
            if shape_ids:
                # Shape-guarded fast path: a raw dict read replaces the
                # generic property lookup.
                self._guard_shape(receiver, shape_ids, pc, pre_state)
                load = self.emit(MLoadProperty(receiver, name))
            else:
                load = MGetPropV(receiver, name)
                load.attach_resume_point(
                    self.make_resume(pc, ResumePoint.MODE_AT, pre_state)
                )
                self.emit(load)
            stack.append(self.speculate_result(load, pc, state))
        elif op == Op.SETPROP:
            value = stack.pop()
            receiver = stack.pop()
            pre_state = _State(state.args, state.locals, stack + [receiver, value])
            receiver = self.speculate_receiver(receiver, pc, pre_state)
            name = code.names[instr.arg]
            shape_ids = self._ic_shape_ids(pc, receiver)
            if shape_ids:
                self._guard_shape(receiver, shape_ids, pc, pre_state)
                self.emit(MStoreProperty(receiver, value, name))
            else:
                store = MSetPropV(receiver, value, name)
                store.attach_resume_point(
                    self.make_resume(pc, ResumePoint.MODE_AT, pre_state)
                )
                self.emit(store)
            stack.append(value)
        elif op == Op.GETELEM:
            index = stack.pop()
            receiver = stack.pop()
            pre_state = _State(state.args, state.locals, stack + [receiver, index])
            receiver = self.speculate_receiver(receiver, pc, pre_state)
            load = MGetElemV(receiver, index)
            load.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AT, pre_state))
            self.emit(load)
            stack.append(self.speculate_result(load, pc, state))
        elif op == Op.SETELEM:
            value = stack.pop()
            index = stack.pop()
            receiver = stack.pop()
            pre_state = _State(state.args, state.locals, stack + [receiver, index, value])
            receiver = self.speculate_receiver(receiver, pc, pre_state)
            store = MSetElemV(receiver, index, value)
            store.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AT, pre_state))
            self.emit(store)
            stack.append(value)
        elif op == Op.SELF:
            stack.append(self.emit(MSelf()))
        elif op == Op.CLOSURE:
            nested = code.constants[instr.arg]
            if nested.has_frees:
                raise NotCompilable(
                    "%s creates closure %s with free variables" % (code.name, nested.name)
                )
            stack.append(self.emit(MLambda(nested)))
        elif op == Op.CALL:
            count = instr.arg
            args = stack[len(stack) - count :] if count else []
            del stack[len(stack) - count :]
            this_value = stack.pop()
            callee = stack.pop()
            call = MCall(callee, this_value, args)
            # Mode "at" with the un-popped stack: the inliner reuses
            # this snapshot so a bailout inside an inlined body can
            # restart the whole CALL in the interpreter (§3.7).
            pre_state = _State(
                state.args, state.locals, stack + [callee, this_value] + args
            )
            call.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AT, pre_state))
            self.emit(call)
            stack.append(self.speculate_result(call, pc, state))
        elif op == Op.NEW:
            count = instr.arg
            args = stack[len(stack) - count :] if count else []
            del stack[len(stack) - count :]
            callee = stack.pop()
            new = MNew(callee, args)
            pre_state = _State(state.args, state.locals, stack + [callee] + args)
            new.attach_resume_point(self.make_resume(pc, ResumePoint.MODE_AT, pre_state))
            self.emit(new)
            stack.append(self.speculate_result(new, pc, state))
        elif op == Op.RETURN:
            self.emit(MReturn(stack.pop()))
            return True
        elif op == Op.RETURN_UNDEF:
            self.emit(MReturn(self.constant(UNDEFINED)))
            return True
        else:
            raise CompilerError("MIR builder cannot handle opcode %r" % op)
        return False

    # -- phi cleanup -----------------------------------------------------------------------

    def _simplify_phis(self):
        """Remove trivial phis (all inputs equal, or self plus one input).

        Maximal SSA construction creates a phi per slot per block; most
        are redundant.  Iterates to a fixed point because removing one
        phi can make another trivial.
        """
        changed = True
        while changed:
            changed = False
            for block in self.graph.blocks:
                for phi in list(block.phis):
                    inputs = set(
                        operand for operand in phi.operands if operand is not phi
                    )
                    if len(inputs) == 1:
                        replacement = inputs.pop()
                        phi.replace_all_uses_with(replacement)
                        block.remove_phi(phi)
                        changed = True


def build_mir(
    code,
    feedback=None,
    param_values=None,
    this_value=None,
    osr_pc=None,
    osr_args=None,
    osr_locals=None,
    generic=False,
    shape_guards=True,
):
    """Build the MIR graph for ``code``.  See :class:`MIRBuilder`."""
    builder = MIRBuilder(
        code,
        feedback=feedback,
        param_values=param_values,
        this_value=this_value,
        osr_pc=osr_pc,
        osr_args=osr_args,
        osr_locals=osr_locals,
        generic=generic,
        shape_guards=shape_guards,
    )
    return builder.build()
