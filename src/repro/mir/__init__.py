"""MIR: the SSA middle-level IR of the JIT (IonMonkey's MIR analogue).

A :class:`~repro.mir.graph.MIRGraph` is a CFG of basic blocks holding
three-address SSA instructions.  Graphs are built from stack bytecode
by :mod:`repro.mir.builder`, optimized by the passes in
:mod:`repro.opts`, and lowered to LIR by :mod:`repro.lir.lowering`.
"""

from repro.mir.types import MIRType, tag_to_mirtype, mirtype_of_value
from repro.mir.graph import MBasicBlock, MIRGraph
from repro.mir.builder import build_mir
from repro.mir.printer import format_graph
from repro.mir.verifier import verify_graph

__all__ = [
    "MIRType",
    "tag_to_mirtype",
    "mirtype_of_value",
    "MBasicBlock",
    "MIRGraph",
    "build_mir",
    "format_graph",
    "verify_graph",
]
