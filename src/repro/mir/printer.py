"""Human-readable MIR dumps, in the spirit of the paper's figures."""


def format_block(block):
    """Render one block: header, phis, instructions."""
    lines = []
    preds = ",".join("B%d" % p.id for p in block.predecessors)
    header = "B%d:" % block.id
    if preds:
        header += "  ; preds: %s" % preds
    lines.append(header)
    for phi in block.phis:
        lines.append("  %r" % phi)
    for instruction in block.instructions:
        text = "  %r" % instruction
        if instruction.resume_point is not None:
            text += "  [resume %s@%d]" % (
                instruction.resume_point.mode,
                instruction.resume_point.pc,
            )
        lines.append(text)
    return "\n".join(lines)


def format_graph(graph):
    """Render a whole MIR graph as text (entry blocks first)."""
    lines = ["; MIR for %s%s" % (graph.code.name, " [specialized]" if graph.specialized else "")]
    if graph.entry is not None:
        lines.append("; function entry: B%d" % graph.entry.id)
    if graph.osr_entry is not None:
        lines.append("; OSR entry: B%d (pc %s)" % (graph.osr_entry.id, graph.osr_pc))
    for block in graph.blocks:
        lines.append(format_block(block))
    return "\n".join(lines)
