"""MIR instruction classes.

Every instruction is an SSA definition (:class:`MDefinition`) with
typed operands, a def-use web, and effect/guard metadata that the
optimization passes consult:

* ``is_guard`` — the instruction may trigger a bailout back to the
  interpreter (type guards, overflow checks, bounds checks).  Guards
  carry a :class:`ResumePoint` describing how to rebuild the
  interpreter frame.
* ``effect`` — ``EFFECT_NONE`` (pure), ``EFFECT_LOAD`` (reads the
  heap), ``EFFECT_STORE`` (writes the heap or calls out).  Pure
  instructions are eligible for GVN/LICM/DCE; loads are movable only
  under the paper's naive alias analysis (no stores anywhere in the
  graph); stores pin everything.

The instruction vocabulary intentionally mirrors the paper's Figure 6:
``parameter``, ``constant``, ``unbox``, ``typebarrier``, ``checkarray``
(= bounds check), ``ld``/``st`` (element access), ``call``,
``resumepoint``, ``checkoverrecursed``, phis, and the arithmetic and
comparison families.
"""

from repro.mir.types import MIRType, mirtype_of_value

EFFECT_NONE = 0
EFFECT_LOAD = 1
EFFECT_STORE = 2


class ResumePoint(object):
    """A snapshot telling a bailout how to rebuild the interpreter frame.

    ``mode`` is ``"at"`` (resume by re-executing the bytecode at
    ``pc``) or ``"after"`` (resume at ``pc + 1`` with the faulting
    instruction's computed value pushed on the rebuilt stack).

    Operands are live MIR values in the fixed layout
    ``[args..., locals..., stack...]``; the executor reads their native
    locations to materialize the frame.  Resume-point operands count as
    uses, so DCE keeps them alive.
    """

    MODE_AT = "at"
    MODE_AFTER = "after"

    __slots__ = ("pc", "mode", "operands", "num_args", "num_locals", "instruction")

    def __init__(self, pc, mode, args, locals_, stack):
        self.pc = pc
        self.mode = mode
        operands = list(args) + list(locals_) + list(stack)
        self.operands = operands
        self.num_args = len(args)
        self.num_locals = len(locals_)
        self.instruction = None
        # Inlined add_use: this runs for every live value at every
        # resume point, the hottest loop of MIR graph construction.
        index = 0
        for operand in operands:
            operand.uses.append((self, index))
            index += 1

    @property
    def args(self):
        return self.operands[: self.num_args]

    @property
    def locals(self):
        return self.operands[self.num_args : self.num_args + self.num_locals]

    @property
    def stack(self):
        return self.operands[self.num_args + self.num_locals :]

    def set_operand(self, index, new_value):
        old = self.operands[index]
        old.remove_use(self, index)
        self.operands[index] = new_value
        new_value.add_use(self, index)

    def discard(self):
        """Drop all uses (when the owning instruction is removed)."""
        for index, operand in enumerate(self.operands):
            operand.remove_use(self, index)
        self.operands = []
        self.num_args = 0
        self.num_locals = 0

    def __repr__(self):
        return "ResumePoint(pc=%d, %s)" % (self.pc, self.mode)


class MDefinition(object):
    """Base class of all MIR instructions (every one defines a value)."""

    opcode = "?"
    is_guard = False
    is_control = False
    effect = EFFECT_NONE
    #: Whether DCE may remove the instruction when its value is unused.
    removable = True
    #: Whether GVN/LICM may merge/hoist it.
    movable = True

    __slots__ = ("id", "block", "operands", "uses", "type", "resume_point")

    def __init__(self, operands=(), mirtype=MIRType.VALUE):
        self.id = -1
        self.block = None
        ops = list(operands)
        self.operands = ops
        self.uses = []
        self.type = mirtype
        self.resume_point = None
        # Inlined add_use (one definition, never overridden): this
        # constructor runs for every MIR instruction ever built.
        index = 0
        for operand in ops:
            operand.uses.append((self, index))
            index += 1

    # -- def-use web ---------------------------------------------------------

    def add_use(self, consumer, index):
        self.uses.append((consumer, index))

    def remove_use(self, consumer, index):
        try:
            self.uses.remove((consumer, index))
        except ValueError:
            pass

    def set_operand(self, index, new_value):
        old = self.operands[index]
        old.remove_use(self, index)
        self.operands[index] = new_value
        new_value.add_use(self, index)

    def replace_all_uses_with(self, replacement):
        """Redirect every use of self (including resume points) to
        ``replacement``."""
        if replacement is self:
            return
        for consumer, index in list(self.uses):
            consumer.set_operand(index, replacement)

    def has_uses(self):
        return bool(self.uses)

    def attach_resume_point(self, resume_point):
        self.resume_point = resume_point
        if resume_point is not None:
            resume_point.instruction = self

    def release_operands(self):
        """Drop operand uses and the resume point (before removal)."""
        for index, operand in enumerate(self.operands):
            operand.remove_use(self, index)
        self.operands = []
        if self.resume_point is not None:
            self.resume_point.discard()
            self.resume_point = None

    # -- GVN support -----------------------------------------------------------

    def congruence_extra(self):
        """Instruction-specific key material for value numbering."""
        return None

    def congruence_key(self):
        if self.effect != EFFECT_NONE or self.is_guard or not self.movable:
            return None
        return (
            self.opcode,
            self.type,
            self.congruence_extra(),
            tuple(operand.id for operand in self.operands),
        )

    def __repr__(self):
        operand_text = ", ".join("v%d" % operand.id for operand in self.operands)
        return "v%d = %s(%s) :%s" % (self.id, self.opcode, operand_text, self.type)


# ---------------------------------------------------------------------------
# Entry values
# ---------------------------------------------------------------------------


class MParameter(MDefinition):
    """A formal parameter; ``index == -1`` is ``this`` (cf. Figure 5)."""

    opcode = "parameter"
    movable = False
    __slots__ = ("index",)

    def __init__(self, index):
        super().__init__((), MIRType.VALUE)
        self.index = index

    def __repr__(self):
        return "v%d = parameter %d :%s" % (self.id, self.index, self.type)


class MOsrValue(MDefinition):
    """A value flowing in through the OSR entry block (arg or local slot)."""

    opcode = "osrvalue"
    movable = False
    __slots__ = ("kind", "index")

    def __init__(self, kind, index):
        super().__init__((), MIRType.VALUE)
        self.kind = kind  # "arg" | "local"
        self.index = index

    def __repr__(self):
        return "v%d = osrvalue %s[%d]" % (self.id, self.kind, self.index)


class MConstant(MDefinition):
    """A compile-time constant guest value.

    Parameter specialization manufactures these from the interpreter
    stack's actual argument values (paper §3.2).
    """

    opcode = "constant"
    __slots__ = ("value",)

    def __init__(self, value):
        super().__init__((), mirtype_of_value(value))
        self.value = value

    def congruence_extra(self):
        from repro.jsvm.values import value_key

        return value_key(self.value)

    def __repr__(self):
        return "v%d = constant %r :%s" % (self.id, self.value, self.type)


class MPhi(MDefinition):
    """SSA phi; operands align with the owning block's predecessors."""

    opcode = "phi"
    movable = False
    __slots__ = ("slot",)

    def __init__(self, mirtype=MIRType.VALUE, slot=None):
        super().__init__((), mirtype)
        self.slot = slot  # debugging aid: ("arg"|"local"|"stack", index)

    def add_input(self, value):
        self.operands.append(value)
        value.add_use(self, len(self.operands) - 1)

    def __repr__(self):
        operand_text = ", ".join("v%d" % operand.id for operand in self.operands)
        return "v%d = phi(%s) :%s" % (self.id, operand_text, self.type)


# ---------------------------------------------------------------------------
# Boxing, guards and conversions
# ---------------------------------------------------------------------------


class MUnbox(MDefinition):
    """Guard that a boxed value has a given type; yields the unboxed value."""

    opcode = "unbox"
    is_guard = True
    __slots__ = ()

    def __init__(self, value, mirtype):
        super().__init__((value,), mirtype)

    def congruence_key(self):
        # Unbox guards of the same value to the same type are congruent.
        return (self.opcode, self.type, tuple(operand.id for operand in self.operands))


class MBox(MDefinition):
    """Box a typed value back into a generic Value."""

    opcode = "box"
    __slots__ = ()

    def __init__(self, value):
        super().__init__((value,), MIRType.VALUE)


class MTypeBarrier(MDefinition):
    """Guard that a boxed value matches the profiled type; passes it through.

    This is the ``typebarrier`` of the paper's Figure 6, used after
    calls and loads whose observed types the compiler speculates on.
    """

    opcode = "typebarrier"
    is_guard = True
    __slots__ = ("expected",)

    def __init__(self, value, expected_mirtype):
        super().__init__((value,), MIRType.VALUE)
        self.expected = expected_mirtype

    def congruence_extra(self):
        return self.expected

    def congruence_key(self):
        return (self.opcode, self.expected, tuple(operand.id for operand in self.operands))

    def __repr__(self):
        return "v%d = typebarrier v%d, %s" % (self.id, self.operands[0].id, self.expected)


class MToDouble(MDefinition):
    """Numeric widening int32 → double (never bails)."""

    opcode = "todouble"
    __slots__ = ()

    def __init__(self, value):
        super().__init__((value,), MIRType.DOUBLE)


class MToInt32(MDefinition):
    """JS ToInt32 truncation for bitwise operators (never bails)."""

    opcode = "toint32"
    __slots__ = ()

    def __init__(self, value):
        super().__init__((value,), MIRType.INT32)


class MCheckOverRecursed(MDefinition):
    """Stack-depth guard at function entry (Figure 6)."""

    opcode = "checkoverrecursed"
    is_guard = True
    removable = False
    movable = False
    __slots__ = ()

    def __init__(self):
        super().__init__((), MIRType.UNDEFINED)


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


class MBinaryArithI(MDefinition):
    """Specialized int32 arithmetic (+ - *) with an overflow guard.

    ``is_guard`` is per-instance: the overflow-check-elimination
    extension clears it when range analysis proves the result fits
    int32 (and, for ``*``, cannot be a negative zero).
    """

    opcode = "arith_i"
    __slots__ = ("op", "is_guard")

    def __init__(self, op, lhs, rhs):
        super().__init__((lhs, rhs), MIRType.INT32)
        self.op = op  # bytecode Op.ADD / Op.SUB / Op.MUL
        self.is_guard = True  # overflow bailout

    def congruence_key(self):
        return (self.opcode, self.op, tuple(operand.id for operand in self.operands))

    def congruence_extra(self):
        return self.op

    def __repr__(self):
        return "v%d = %s_i v%d, v%d" % (
            self.id,
            self.op.lower(),
            self.operands[0].id,
            self.operands[1].id,
        )


class MBinaryArithD(MDefinition):
    """Double arithmetic (+ - * / %); never bails."""

    opcode = "arith_d"
    __slots__ = ("op",)

    def __init__(self, op, lhs, rhs):
        super().__init__((lhs, rhs), MIRType.DOUBLE)
        self.op = op

    def congruence_extra(self):
        return self.op

    def __repr__(self):
        return "v%d = %s_d v%d, v%d" % (
            self.id,
            self.op.lower(),
            self.operands[0].id,
            self.operands[1].id,
        )


class MBitOpI(MDefinition):
    """Int32 bitwise/shift operators; only ``>>>`` can bail (uint32 overflow).

    ``is_guard`` is per-instance here: it is True only for ``>>>``,
    whose uint32 result bails out when it exceeds INT32_MAX.
    """

    opcode = "bitop_i"
    __slots__ = ("op", "is_guard")

    def __init__(self, op, lhs, rhs, is_guard=False):
        super().__init__((lhs, rhs), MIRType.INT32)
        self.op = op
        self.is_guard = is_guard

    def congruence_extra(self):
        return self.op

    def congruence_key(self):
        return (self.opcode, self.op, tuple(operand.id for operand in self.operands))

    def __repr__(self):
        return "v%d = %s_i v%d, v%d" % (
            self.id,
            self.op.lower(),
            self.operands[0].id,
            self.operands[1].id,
        )


class MNegI(MDefinition):
    """Int32 negation; bails on 0 (JS -0 is a double) and INT32_MIN.

    Per-instance ``is_guard``, clearable by overflow-check elimination
    when the operand range excludes both hazards.
    """

    opcode = "neg_i"
    __slots__ = ("is_guard",)

    def __init__(self, value):
        super().__init__((value,), MIRType.INT32)
        self.is_guard = True


class MNegD(MDefinition):
    """Double negation (never bails)."""

    opcode = "neg_d"
    __slots__ = ()

    def __init__(self, value):
        super().__init__((value,), MIRType.DOUBLE)


class MConcat(MDefinition):
    """String concatenation of two string-typed values."""

    opcode = "concat"
    __slots__ = ()

    def __init__(self, lhs, rhs):
        super().__init__((lhs, rhs), MIRType.STRING)


class MCompare(MDefinition):
    """Specialized comparison producing a boolean.

    ``kind`` selects the operand specialization: ``"i"`` (int32),
    ``"d"`` (double), ``"s"`` (string).  Generic comparisons use
    :class:`MBinaryV`.
    """

    opcode = "compare"
    __slots__ = ("op", "kind")

    def __init__(self, op, kind, lhs, rhs):
        super().__init__((lhs, rhs), MIRType.BOOLEAN)
        self.op = op
        self.kind = kind

    def congruence_extra(self):
        return (self.op, self.kind)

    def __repr__(self):
        return "v%d = %s_%s v%d, v%d" % (
            self.id,
            self.op.lower(),
            self.kind,
            self.operands[0].id,
            self.operands[1].id,
        )


class MBinaryV(MDefinition):
    """Generic (boxed) binary operator; evaluated by the VM helper.

    Never bails — it computes the full JS semantics — but it is far
    slower than the specialized forms, which is exactly the cost type
    specialization and value specialization remove.
    """

    opcode = "binary_v"
    __slots__ = ("op",)

    # Generic + can call toString on objects in principle; our subset's
    # coercions are pure, so binary_v stays pure and GVN-able.

    def __init__(self, op, lhs, rhs):
        super().__init__((lhs, rhs), MIRType.VALUE)
        self.op = op

    def congruence_extra(self):
        return self.op

    def __repr__(self):
        return "v%d = %s_v v%d, v%d" % (
            self.id,
            self.op.lower(),
            self.operands[0].id,
            self.operands[1].id,
        )


class MUnaryV(MDefinition):
    """Generic unary operator on a boxed value."""

    opcode = "unary_v"
    __slots__ = ("op",)

    def __init__(self, op, value):
        super().__init__((value,), MIRType.VALUE)
        self.op = op

    def congruence_extra(self):
        return self.op

    def __repr__(self):
        return "v%d = %s_v v%d" % (self.id, self.op.lower(), self.operands[0].id)


class MNot(MDefinition):
    """Boolean negation via ToBoolean."""

    opcode = "not"
    __slots__ = ()

    def __init__(self, value):
        super().__init__((value,), MIRType.BOOLEAN)


class MTypeOf(MDefinition):
    """The ``typeof`` operator; foldable once its operand's type is known."""

    opcode = "typeof"
    __slots__ = ()

    def __init__(self, value):
        super().__init__((value,), MIRType.STRING)


# ---------------------------------------------------------------------------
# Heap access
# ---------------------------------------------------------------------------


class MArrayLength(MDefinition):
    """Read ``array.length`` (an int32)."""

    opcode = "arraylength"
    effect = EFFECT_LOAD
    __slots__ = ()

    def __init__(self, array):
        super().__init__((array,), MIRType.INT32)


class MStringLength(MDefinition):
    """Read ``string.length``; pure (strings are immutable)."""

    opcode = "stringlength"
    __slots__ = ()

    def __init__(self, string):
        super().__init__((string,), MIRType.INT32)


class MBoundsCheck(MDefinition):
    """Guard ``0 <= index < length`` (the paper's ``checkarray``).

    Carries no result; the following element access assumes it.  Only
    the bounds-check-elimination pass may delete it.
    """

    opcode = "boundscheck"
    is_guard = True
    removable = False
    movable = False
    __slots__ = ()

    def __init__(self, index, length):
        super().__init__((index, length), MIRType.UNDEFINED)


class MLoadElement(MDefinition):
    """Fast in-bounds array element load (the paper's ``ld``).

    Not movable: it must stay behind the bounds check guarding it.
    """

    opcode = "loadelement"
    effect = EFFECT_LOAD
    movable = False
    __slots__ = ()

    def __init__(self, array, index):
        super().__init__((array, index), MIRType.VALUE)


class MStoreElement(MDefinition):
    """Fast in-bounds array element store (the paper's ``st``)."""

    opcode = "storeelement"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ()

    def __init__(self, array, index, value):
        super().__init__((array, index, value), MIRType.UNDEFINED)


class MGetElemV(MDefinition):
    """Generic indexed read (strings, objects, out-of-bounds, holes)."""

    opcode = "getelem_v"
    effect = EFFECT_LOAD
    __slots__ = ()

    def __init__(self, obj, index):
        super().__init__((obj, index), MIRType.VALUE)


class MSetElemV(MDefinition):
    """Generic indexed write (may grow arrays)."""

    opcode = "setelem_v"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ()

    def __init__(self, obj, index, value):
        super().__init__((obj, index, value), MIRType.UNDEFINED)


class MGuardShape(MDefinition):
    """Guard that an object's hidden-class shape is one the IC cached.

    ``shape_ids`` is the (ordered) tuple of acceptable shape ids from
    the property site's inline cache — one id for a monomorphic site,
    up to :data:`repro.jsvm.feedback.MAX_IC_SHAPES` for a polymorphic
    one.  Carries no result; the following :class:`MLoadProperty` /
    :class:`MStoreProperty` fast path assumes it.  On failure the
    bailout resumes *at* the property bytecode, whose interpreter
    handler both performs the generic access and feeds the offending
    shape back into the IC.
    """

    opcode = "guardshape"
    is_guard = True
    removable = False
    movable = False
    __slots__ = ("shape_ids",)

    def __init__(self, obj, shape_ids):
        super().__init__((obj,), MIRType.UNDEFINED)
        self.shape_ids = tuple(shape_ids)

    def __repr__(self):
        return "v%d = guardshape v%d, %r" % (
            self.id,
            self.operands[0].id,
            self.shape_ids,
        )


class MLoadProperty(MDefinition):
    """Property read from a known JSObject."""

    opcode = "loadprop"
    effect = EFFECT_LOAD
    __slots__ = ("name",)

    def __init__(self, obj, name):
        super().__init__((obj,), MIRType.VALUE)
        self.name = name

    def congruence_extra(self):
        return self.name

    def __repr__(self):
        return "v%d = loadprop v%d, %r" % (self.id, self.operands[0].id, self.name)


class MStoreProperty(MDefinition):
    """Property write on a known JSObject."""

    opcode = "storeprop"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ("name",)

    def __init__(self, obj, value, name):
        super().__init__((obj, value), MIRType.UNDEFINED)
        self.name = name

    def __repr__(self):
        return "v%d = storeprop v%d.%s = v%d" % (
            self.id,
            self.operands[0].id,
            self.name,
            self.operands[1].id,
        )


class MGetPropV(MDefinition):
    """Generic property read (any receiver, method tables included)."""

    opcode = "getprop_v"
    effect = EFFECT_LOAD
    __slots__ = ("name",)

    def __init__(self, obj, name):
        super().__init__((obj,), MIRType.VALUE)
        self.name = name

    def congruence_extra(self):
        return self.name


class MSetPropV(MDefinition):
    """Generic property write (any receiver)."""

    opcode = "setprop_v"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ("name",)

    def __init__(self, obj, value, name):
        super().__init__((obj, value), MIRType.UNDEFINED)
        self.name = name


class MLoadGlobal(MDefinition):
    """Read a global binding by name."""

    opcode = "loadglobal"
    effect = EFFECT_LOAD
    __slots__ = ("name",)

    def __init__(self, name):
        super().__init__((), MIRType.VALUE)
        self.name = name

    def congruence_extra(self):
        return self.name

    def __repr__(self):
        return "v%d = loadglobal %r" % (self.id, self.name)


class MStoreGlobal(MDefinition):
    """Write a global binding by name."""

    opcode = "storeglobal"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ("name",)

    def __init__(self, value, name):
        super().__init__((value,), MIRType.UNDEFINED)
        self.name = name


class MNewArray(MDefinition):
    """Array literal allocation."""

    opcode = "newarray"
    effect = EFFECT_STORE  # allocation is observable (identity)
    removable = False
    movable = False
    __slots__ = ()

    def __init__(self, elements):
        super().__init__(tuple(elements), MIRType.ARRAY)


class MNewObject(MDefinition):
    """Object literal allocation; ``keys`` are the literal's property names."""

    opcode = "newobject"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ("keys",)

    def __init__(self, keys, values):
        super().__init__(tuple(values), MIRType.OBJECT)
        self.keys = tuple(keys)


class MLambda(MDefinition):
    """Closure instantiation for a nested function without free variables."""

    opcode = "lambda"
    effect = EFFECT_STORE  # each evaluation yields a fresh identity
    removable = False
    movable = False
    __slots__ = ("code",)

    def __init__(self, code):
        super().__init__((), MIRType.FUNCTION)
        self.code = code

    def __repr__(self):
        return "v%d = lambda <%s>" % (self.id, self.code.name)


class MSelf(MDefinition):
    """The currently executing function value."""

    opcode = "self"
    movable = False
    __slots__ = ()

    def __init__(self):
        super().__init__((), MIRType.FUNCTION)


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------


class MCall(MDefinition):
    """Generic call: operands are ``[callee, this, args...]``."""

    opcode = "call"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ()

    def __init__(self, callee, this_value, args):
        super().__init__((callee, this_value) + tuple(args), MIRType.VALUE)

    @property
    def callee(self):
        return self.operands[0]

    @property
    def this_value(self):
        return self.operands[1]

    @property
    def call_args(self):
        return self.operands[2:]


class MNew(MDefinition):
    """Constructor call: operands are ``[callee, args...]``."""

    opcode = "new"
    effect = EFFECT_STORE
    removable = False
    movable = False
    __slots__ = ()

    def __init__(self, callee, args):
        super().__init__((callee,) + tuple(args), MIRType.VALUE)


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class MControl(MDefinition):
    """Base of block terminators; ``successors`` lists target blocks."""

    is_control = True
    removable = False
    movable = False
    __slots__ = ("successors",)

    def __init__(self, operands=()):
        super().__init__(operands, MIRType.UNDEFINED)
        self.successors = []


class MGoto(MControl):
    """Unconditional jump."""

    opcode = "goto"
    __slots__ = ()

    def __init__(self, target):
        super().__init__(())
        self.successors = [target]

    def __repr__(self):
        return "goto B%d" % self.successors[0].id


class MTest(MControl):
    """Conditional branch (the paper's ``brt``): [if_true, if_false]."""

    opcode = "test"
    __slots__ = ()

    def __init__(self, condition, if_true, if_false):
        super().__init__((condition,))
        self.successors = [if_true, if_false]

    def __repr__(self):
        return "test v%d ? B%d : B%d" % (
            self.operands[0].id,
            self.successors[0].id,
            self.successors[1].id,
        )


class MReturn(MControl):
    """Return a value to the caller."""

    opcode = "return"
    __slots__ = ()

    def __init__(self, value):
        super().__init__((value,))

    def __repr__(self):
        return "return v%d" % self.operands[0].id
