"""Deterministic background-compilation lane.

Real IonMonkey hides compilation latency by running the optimizing
compiler on a helper thread; the main thread keeps interpreting and
picks up the finished binary at a safe point.  This module models that
with a second deterministic cycle clock — the *compiler lane* — so the
simulation stays bit-reproducible while still letting compile work
overlap interpretation.

The schedule is fully determined by the cost model:

* ``enqueue`` happens at main-lane cycle ``E`` (the hotness threshold
  trip).  The lane picks the job up at
  ``start = max(E + compile_dispatch, lane_cycle)`` — dispatch latency,
  or later if the single-helper lane is still busy with an earlier job.
* The job is *ready* at ``ready_at = start + compile_cycles`` and the
  lane advances to that point (jobs are serviced FIFO, one at a time).
* The binary *installs* at the first main-lane poll point (a call or a
  loop back edge) whose clock is ``>= ready_at`` — i.e. at cycle
  ``max(ready_at, poll_cycle)``, the ``max(enqueue + delay, main)``
  timestamp of the issue statement.

Compile cycles spent on the lane are recorded as
``compile_cycles_hidden`` and never enter ``total_cycles``; only
synchronous (stalled) compiles do.  The queue itself is dumb on
purpose: the engine owns compilation, policy and installation — this
class owns only the timeline.
"""


class CompileJob(object):
    """One background compilation, already performed, awaiting install.

    The host compiles eagerly at enqueue time (the inputs — bytecode,
    feedback snapshot, argument values — are captured then, exactly
    what a real engine snapshots before handing off to the helper
    thread), but the *result* only becomes visible to the program at
    ``ready_at`` on the main-lane clock.
    """

    __slots__ = (
        "state",
        "function",
        "this_value",
        "args",
        "result",
        "compile_cycles",
        "spec_key",
        "enqueue_cycle",
        "ready_at",
        "generalized",
    )

    def __init__(self, state, function, this_value, args, result, compile_cycles):
        self.state = state
        self.function = function
        self.this_value = this_value
        self.args = args
        self.result = result
        self.compile_cycles = compile_cycles
        self.spec_key = None
        self.enqueue_cycle = None
        self.ready_at = None
        #: True for a deoptless generalized-sibling compile: on install
        #: it becomes the function's dispatch-table fallback
        #: (docs/DEOPTLESS.md) as well as the active binary.
        self.generalized = False


class CompileQueue(object):
    """FIFO job timeline for the single-helper compiler lane."""

    __slots__ = (
        "dispatch_delay",
        "lane_cycle",
        "lane_high_water",
        "depth_high_water",
        "pending",
        "enqueued",
        "installed",
        "dropped",
    )

    def __init__(self, dispatch_delay):
        #: Main-lane cycles between enqueue and the lane starting work.
        self.dispatch_delay = dispatch_delay
        #: The lane's own clock: when it finishes its last queued job.
        self.lane_cycle = 0
        #: High-water mark of the lane clock: the furthest point the
        #: helper's timeline has ever been scheduled to.  ``schedule``
        #: only moves ``lane_cycle`` forward today, but the mark is
        #: tracked explicitly so the ``repro_compile_queue_lane_cycle``
        #: gauge stays correct if cancellation semantics ever change.
        self.lane_high_water = 0
        #: Deepest ``pending`` has ever been (jobs awaiting install),
        #: the ``repro_compile_queue_depth_high_water`` gauge.
        self.depth_high_water = 0
        #: code_id -> CompileJob, insertion (= completion) ordered.
        #: At most one in-flight job per function.
        self.pending = {}
        self.enqueued = 0
        self.installed = 0
        self.dropped = 0

    def has_job(self, code_id):
        return code_id in self.pending

    def schedule(self, code_id, job, now):
        """Place ``job`` on the lane timeline at main-lane cycle ``now``."""
        start = max(now + self.dispatch_delay, self.lane_cycle)
        job.enqueue_cycle = now
        job.ready_at = start + job.compile_cycles
        self.lane_cycle = job.ready_at
        if self.lane_cycle > self.lane_high_water:
            self.lane_high_water = self.lane_cycle
        self.pending[code_id] = job
        if len(self.pending) > self.depth_high_water:
            self.depth_high_water = len(self.pending)
        self.enqueued += 1
        return job.ready_at

    def cancel(self, code_id):
        """Drop a pending job (e.g. its function deoptimized meanwhile).

        The lane clock does not rewind: the helper already spent those
        cycles, the work is simply wasted — as it would be for real.
        Returns True when a job was actually pending (and is now
        dropped), so callers can emit the ``compile.queue_depth`` drop
        event only for real cancellations.
        """
        if self.pending.pop(code_id, None) is not None:
            self.dropped += 1
            return True
        return False

    def take_ready(self, now):
        """Pop and return every job with ``ready_at <= now``, FIFO."""
        ready = [
            code_id for code_id, job in self.pending.items() if job.ready_at <= now
        ]
        return [self.pending.pop(code_id) for code_id in ready]
