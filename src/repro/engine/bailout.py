"""Bailout introspection and guard fault injection ("chaos deopt").

A :class:`repro.lir.executor.Bailout` carries everything the engine
needs to resume interpretation (frame values, resume pc and mode) plus
the provenance the tracing layer reports: which guard op failed, why,
the failing instruction's index in the native stream, and the id of
the resume point (snapshot) the frame was rebuilt from.  Resume-point
ids are assigned in native emission order by
:func:`repro.lir.native.generate_native`, so they are stable across
identical compilations and a trace can be cross-referenced against
``python -m repro disasm`` output.

:class:`GuardFaultInjector` is the other direction: instead of
observing bailouts it *provokes* them.  Armed on an engine
(``Engine(fault_injector=...)``), both executor backends consult it at
every guard and force the selected guards to fail even though the
speculation they encode holds — with the exact recovery values the
interpreter would have produced, so a fault-injected run must print
bit-identical output.  That proves every compiled guard has a live,
correct deoptimization path (the invariant Flückiger et al. formalize
and docs/FUZZING.md describes); the differential fuzzer's chaos mode
is built on it.
"""

from repro.lir.native import FAULT_INJECTED, guard_indices


def describe_bailout(bail):
    """Extract the ``bailout.guard`` trace-event fields from ``bail``.

    Returns a dict with ``reason``, ``guard_op``, ``resume_pc``,
    ``resume_mode``, ``resume_point`` (the snapshot's emission-order id)
    and ``native_index`` (the faulting native instruction's index).
    """
    snapshot = bail.snapshot
    return {
        "reason": bail.reason,
        "guard_op": bail.guard_op,
        "resume_pc": bail.pc,
        "resume_mode": bail.mode,
        "resume_point": None if snapshot is None else snapshot.snapshot_id,
        "native_index": bail.native_index,
    }


class GuardFaultInjector(object):
    """Forces compiled guards to fail on demand ("chaos deopt").

    Selectors compose:

    * ``function`` — only guards in binaries of the named guest
      function (None targets every binary);
    * ``nth`` — only the Nth guard of a matching binary, in native
      stream order (None targets every guard).

    Each selected guard fires **once per binary**: the first time it
    executes, :meth:`should_fire` returns True, the executor raises a
    :class:`~repro.lir.executor.Bailout` with reason
    ``"fault-injected"`` and the exact recovery value a genuine
    execution would have produced, and subsequent executions of that
    guard run normally.  A fresh binary for the same function (OSR
    recompile, post-deopt generic code) starts with a clean slate, so
    chaos mode sweeps every guard of every generation.

    Two knobs move the firing *later* than the first execution —
    speculation that survives a warm-up and then dies is the regime
    the deoptless dispatch table (docs/DEOPTLESS.md) recovers from,
    and first-execution-only chaos never exercises it:

    * ``on_execution`` — fire each selected guard on its Nth
      *execution* (default 1, the classic first-execution sweep);
    * ``schedule_seed`` — give every (binary, guard) its own
      deterministic pseudo-random firing execution in
      ``[1, schedule_window]``, derived only from the seed, the code
      id and the guard's native index (no host ``hash()``, so the
      schedule is stable across processes and ``PYTHONHASHSEED``).
      Overrides ``on_execution``.

    The default constructor — no selectors — is full chaos: every
    guard of every binary fails on its first execution.  Pair it with
    ``Engine(bailout_limit=...)`` large enough that the engine does not
    fall back to generic code before the sweep finishes.
    """

    def __init__(
        self, function=None, nth=None, on_execution=1, schedule_seed=None,
        schedule_window=8,
    ):
        self.function = function
        self.nth = nth
        self.on_execution = on_execution
        self.schedule_seed = schedule_seed
        self.schedule_window = schedule_window
        #: id(native) -> (native, fired index set, guard index list,
        #: per-guard execution counts).  The native is kept strongly
        #: referenced so ids stay unique for the injector's lifetime
        #: even after the engine discards a binary.
        self._binaries = {}
        #: One record per forced failure, in firing order.
        self.fired = []

    def _entry(self, native):
        entry = self._binaries.get(id(native))
        if entry is None:
            entry = (native, set(), guard_indices(native), {})
            self._binaries[id(native)] = entry
        return entry

    def _scheduled_execution(self, code_id, index):
        """The seeded schedule: a stable mix of (seed, code id, guard
        index) folded into ``[1, schedule_window]``."""
        mixed = (
            self.schedule_seed * 2654435761 + code_id * 40503 + index * 9973
        ) & 0xFFFFFFFF
        mixed ^= mixed >> 16
        mixed = (mixed * 2246822519) & 0xFFFFFFFF
        mixed ^= mixed >> 13
        return 1 + mixed % self.schedule_window

    def should_fire(self, native, index):
        """Decide whether the guard at ``index`` must fail now.

        Called by both executor backends immediately before a guard's
        own check.  Returns True at most once per (binary, guard) and
        records the firing in :attr:`fired`.
        """
        code = native.code
        if self.function is not None and code.name != self.function:
            return False
        _native, fired, guards, executions = self._entry(native)
        if index in fired:
            return False
        if self.nth is not None:
            if self.nth >= len(guards) or guards[self.nth] != index:
                return False
        count = executions.get(index, 0) + 1
        executions[index] = count
        if self.schedule_seed is not None:
            target = self._scheduled_execution(code.code_id, index)
        else:
            target = self.on_execution
        if count < target:
            return False
        fired.add(index)
        self.fired.append(
            {
                "fn": code.name,
                "code_id": code.code_id,
                "native_index": index,
                "guard_op": native.instructions[index].op,
                "specialized": bool(native.meta.get("specialized")),
                "execution": count,
            }
        )
        return True

    def coverage(self):
        """Per-binary firing coverage, for tests and reports.

        Returns a list of ``(native, fired_indices, guard_indices)``
        tuples — one per binary the injector ever saw a guard of.
        """
        return [
            (native, frozenset(fired), tuple(guards))
            for native, fired, guards, _executions in self._binaries.values()
        ]

    def fully_fired_binaries(self):
        """Binaries whose *every* guard was forced to fail at least once."""
        return [
            native
            for native, fired, guards, _executions in self._binaries.values()
            if guards and fired.issuperset(guards)
        ]


def exercise_entry_guards(engine):
    """Post-run harness: re-enter compiled code through the call path.

    A function that got hot on a loop back edge enters native code
    mid-loop (OSR), so its *call-entry* sequence — precondition
    checks, dispatch-table consultation, entry guards — may never
    execute during the program run, leaving a chaos sweep with
    unfired guards and the deoptless call path untested.  After the
    run, this harness replays each compiled function's most recent
    call (``FunctionState.last_call``) through
    ``Engine.try_native_call``, which drives the full call-path entry
    under the engine's normal policy: guard checks (and the armed
    injector, if any), sibling dispatch, bailout recovery.

    The replayed calls discard their results, but they *do* execute
    guest code — use it on kernels whose functions are pure of I/O
    (the generated fuzz corpus and the churn suite qualify; ``print``
    lives only in driver code, which is interpreter-only and has no
    ``FunctionState.native``).  Cycle and stats ledgers advance as
    for any call, so compare ledgers *before* exercising.

    Returns the number of functions re-entered.
    """
    reentered = 0
    for state in list(engine.states.values()):
        if state.native is None or state.last_call is None:
            continue
        function, this_value, args = state.last_call
        handled, _result = engine.try_native_call(function, this_value, args)
        if handled:
            reentered += 1
    return reentered
