"""Bailout introspection and guard fault injection ("chaos deopt").

A :class:`repro.lir.executor.Bailout` carries everything the engine
needs to resume interpretation (frame values, resume pc and mode) plus
the provenance the tracing layer reports: which guard op failed, why,
the failing instruction's index in the native stream, and the id of
the resume point (snapshot) the frame was rebuilt from.  Resume-point
ids are assigned in native emission order by
:func:`repro.lir.native.generate_native`, so they are stable across
identical compilations and a trace can be cross-referenced against
``python -m repro disasm`` output.

:class:`GuardFaultInjector` is the other direction: instead of
observing bailouts it *provokes* them.  Armed on an engine
(``Engine(fault_injector=...)``), both executor backends consult it at
every guard and force the selected guards to fail even though the
speculation they encode holds — with the exact recovery values the
interpreter would have produced, so a fault-injected run must print
bit-identical output.  That proves every compiled guard has a live,
correct deoptimization path (the invariant Flückiger et al. formalize
and docs/FUZZING.md describes); the differential fuzzer's chaos mode
is built on it.
"""

from repro.lir.native import FAULT_INJECTED, guard_indices


def describe_bailout(bail):
    """Extract the ``bailout.guard`` trace-event fields from ``bail``.

    Returns a dict with ``reason``, ``guard_op``, ``resume_pc``,
    ``resume_mode``, ``resume_point`` (the snapshot's emission-order id)
    and ``native_index`` (the faulting native instruction's index).
    """
    snapshot = bail.snapshot
    return {
        "reason": bail.reason,
        "guard_op": bail.guard_op,
        "resume_pc": bail.pc,
        "resume_mode": bail.mode,
        "resume_point": None if snapshot is None else snapshot.snapshot_id,
        "native_index": bail.native_index,
    }


class GuardFaultInjector(object):
    """Forces compiled guards to fail on demand ("chaos deopt").

    Selectors compose:

    * ``function`` — only guards in binaries of the named guest
      function (None targets every binary);
    * ``nth`` — only the Nth guard of a matching binary, in native
      stream order (None targets every guard).

    Each selected guard fires **once per binary**: the first time it
    executes, :meth:`should_fire` returns True, the executor raises a
    :class:`~repro.lir.executor.Bailout` with reason
    ``"fault-injected"`` and the exact recovery value a genuine
    execution would have produced, and subsequent executions of that
    guard run normally.  A fresh binary for the same function (OSR
    recompile, post-deopt generic code) starts with a clean slate, so
    chaos mode sweeps every guard of every generation.

    The default constructor — no selectors — is full chaos: every
    guard of every binary fails on its first execution.  Pair it with
    ``Engine(bailout_limit=...)`` large enough that the engine does not
    fall back to generic code before the sweep finishes.
    """

    def __init__(self, function=None, nth=None):
        self.function = function
        self.nth = nth
        #: id(native) -> (native, fired index set, guard index list).
        #: The native is kept strongly referenced so ids stay unique
        #: for the injector's lifetime even after the engine discards
        #: a binary.
        self._binaries = {}
        #: One record per forced failure, in firing order.
        self.fired = []

    def _entry(self, native):
        entry = self._binaries.get(id(native))
        if entry is None:
            entry = (native, set(), guard_indices(native))
            self._binaries[id(native)] = entry
        return entry

    def should_fire(self, native, index):
        """Decide whether the guard at ``index`` must fail now.

        Called by both executor backends immediately before a guard's
        own check.  Returns True at most once per (binary, guard) and
        records the firing in :attr:`fired`.
        """
        code = native.code
        if self.function is not None and code.name != self.function:
            return False
        _native, fired, guards = self._entry(native)
        if index in fired:
            return False
        if self.nth is not None:
            if self.nth >= len(guards) or guards[self.nth] != index:
                return False
        fired.add(index)
        self.fired.append(
            {
                "fn": code.name,
                "code_id": code.code_id,
                "native_index": index,
                "guard_op": native.instructions[index].op,
                "specialized": bool(native.meta.get("specialized")),
            }
        )
        return True

    def coverage(self):
        """Per-binary firing coverage, for tests and reports.

        Returns a list of ``(native, fired_indices, guard_indices)``
        tuples — one per binary the injector ever saw a guard of.
        """
        return [
            (native, frozenset(fired), tuple(guards))
            for native, fired, guards in self._binaries.values()
        ]

    def fully_fired_binaries(self):
        """Binaries whose *every* guard was forced to fail at least once."""
        return [
            native
            for native, fired, guards in self._binaries.values()
            if guards and fired.issuperset(guards)
        ]
