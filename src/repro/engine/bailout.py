"""Bailout introspection: turn a guard failure into trace-event fields.

A :class:`repro.lir.executor.Bailout` carries everything the engine
needs to resume interpretation (frame values, resume pc and mode) plus
the provenance the tracing layer reports: which guard op failed, why,
the failing instruction's index in the native stream, and the id of
the resume point (snapshot) the frame was rebuilt from.  Resume-point
ids are assigned in native emission order by
:func:`repro.lir.native.generate_native`, so they are stable across
identical compilations and a trace can be cross-referenced against
``python -m repro disasm`` output.
"""


def describe_bailout(bail):
    """Extract the ``bailout.guard`` trace-event fields from ``bail``.

    Returns a dict with ``reason``, ``guard_op``, ``resume_pc``,
    ``resume_mode``, ``resume_point`` (the snapshot's emission-order id)
    and ``native_index`` (the faulting native instruction's index).
    """
    snapshot = bail.snapshot
    return {
        "reason": bail.reason,
        "guard_op": bail.guard_op,
        "resume_pc": bail.pc,
        "resume_mode": bail.mode,
        "resume_point": None if snapshot is None else snapshot.snapshot_id,
        "native_index": bail.native_index,
    }
