"""Engine configuration: optimization selection and the cycle model.

The eleven optimization configurations of the paper's Figure 9 are
combinations of five switches; :data:`PAPER_CONFIGS` lists them in the
figure's column order.  GVN and LICM are IonMonkey baseline passes and
are always on, as in the paper.

The :class:`CostModel` makes "runtime" a deterministic quantity:
every interpreter dispatch, simulated native instruction, unit of
compilation work and bailout has a fixed cycle price.  The constants
encode the *ratios* that drive the paper's results — interpretation is
roughly an order of magnitude slower than native execution, generic
(boxed) operations several times slower than type-specialized ones,
and compilation is a per-instruction-per-pass cost so smaller graphs
compile faster (which is why the paper observes specialization often
*reducing* compile time).
"""


class OptConfig(object):
    """Which of the paper's §3 optimizations the JIT runs.

    ``overflow_elim`` and ``unroll`` are the extensions the paper's §6
    names as future work (overflow-check elimination after Sol et al.,
    and loop unrolling under value specialization); they are off in
    every configuration the paper measures.
    """

    __slots__ = (
        "name",
        "param_spec",
        "constprop",
        "loop_inversion",
        "dce",
        "bounds_check",
        "overflow_elim",
        "unroll",
    )

    def __init__(
        self,
        name,
        param_spec=False,
        constprop=False,
        loop_inversion=False,
        dce=False,
        bounds_check=False,
        overflow_elim=False,
        unroll=False,
    ):
        self.name = name
        self.param_spec = param_spec
        self.constprop = constprop
        self.loop_inversion = loop_inversion
        self.dce = dce
        self.bounds_check = bounds_check
        self.overflow_elim = overflow_elim
        self.unroll = unroll

    def describe(self):
        parts = []
        if self.param_spec:
            parts.append("ParameterSpec")
        if self.constprop:
            parts.append("ConstantPropg")
        if self.loop_inversion:
            parts.append("LoopInversion")
        if self.dce:
            parts.append("DeadCodeElim")
        if self.bounds_check:
            parts.append("BoundCheckElim")
        if self.overflow_elim:
            parts.append("OverflowElim")
        if self.unroll:
            parts.append("LoopUnroll")
        return "+".join(parts) if parts else "baseline"

    def __repr__(self):
        return "<OptConfig %s: %s>" % (self.name, self.describe())


#: IonMonkey as-is: type specialization, GVN, LICM — none of §3.
BASELINE = OptConfig("baseline")

#: Everything from §3 switched on (the last column of Figure 9).
FULL_SPEC = OptConfig(
    "all",
    param_spec=True,
    constprop=True,
    loop_inversion=True,
    dce=True,
    bounds_check=True,
)

#: FULL_SPEC plus the paper's §6 future-work extensions.
EXTENDED = OptConfig(
    "extended",
    param_spec=True,
    constprop=True,
    loop_inversion=True,
    dce=True,
    bounds_check=True,
    overflow_elim=True,
    unroll=True,
)

#: The Figure 9 columns, in order.  Markers (•) from the figure:
#:   1: PS            2: CP            3: PS+CP        4: PS+LI
#:   5: PS+CP+LI      6: PS+CP+DCE     7: PS+LI+DCE    8: PS+CP+BCE
#:   9: PS+LI+BCE    10: PS+CP+LI+DCE 11: all five
PAPER_CONFIGS = [
    OptConfig("PS", param_spec=True),
    OptConfig("CP", constprop=True),
    OptConfig("PS+CP", param_spec=True, constprop=True),
    OptConfig("PS+LI", param_spec=True, loop_inversion=True),
    OptConfig("PS+CP+LI", param_spec=True, constprop=True, loop_inversion=True),
    OptConfig("PS+CP+DCE", param_spec=True, constprop=True, dce=True),
    OptConfig("PS+LI+DCE", param_spec=True, loop_inversion=True, dce=True),
    OptConfig("PS+CP+BCE", param_spec=True, constprop=True, bounds_check=True),
    OptConfig("PS+LI+BCE", param_spec=True, loop_inversion=True, bounds_check=True),
    OptConfig(
        "PS+CP+LI+DCE", param_spec=True, constprop=True, loop_inversion=True, dce=True
    ),
    FULL_SPEC,
]


class CostModel(object):
    """Cycle prices for the deterministic performance model."""

    # -- interpretation ---------------------------------------------------
    #: One bytecode dispatch in the interpreter.
    interp_op = 20
    #: Extra cost of setting up an interpreted call frame.
    interp_call = 60

    # -- native execution ---------------------------------------------------
    #: Default price of one simulated native instruction.
    native_op = 1
    #: Per-opcode overrides; generic (boxed) operations pay the price
    #: of dynamic dispatch, calls pay frame setup, guards pay a
    #: compare-and-branch.
    native_costs = {
        "const": 1,
        "move": 1,
        "getarg": 1,
        "osrvalue": 1,
        "self": 1,
        "add_i": 1,
        "sub_i": 1,
        "mul_i": 2,
        "neg_i": 1,
        "add_d": 2,
        "sub_d": 2,
        "mul_d": 2,
        "div_d": 8,
        "mod_d": 10,
        "neg_d": 1,
        "concat": 12,
        "bitop_i": 1,
        "toint32": 1,
        "todouble": 1,
        "compare": 1,
        "binary_v": 14,
        "unary_v": 10,
        "not": 1,
        "typeof": 8,
        "unbox": 2,
        "typebarrier": 2,
        "checkoverrecursed": 2,
        "guardshape": 2,
        "arraylength": 2,
        "stringlength": 2,
        "boundscheck": 3,
        "loadelement": 2,
        "storeelement": 2,
        "getelem_v": 16,
        "setelem_v": 16,
        "loadprop": 4,
        "storeprop": 4,
        "getprop_v": 14,
        "setprop_v": 14,
        "loadglobal": 3,
        "storeglobal": 3,
        "newarray": 10,
        "newobject": 12,
        "lambda": 8,
        "call": 30,
        "new": 40,
        "goto": 1,
        "test": 2,
        "return": 1,
    }
    #: Extra price when an operand or result lives in a stack slot.
    spill_access = 1

    # -- compilation ------------------------------------------------------------
    #: Fixed price of entering the compiler at all.  Kept small: in a
    #: real compiler per-unit work dominates, which is what lets the
    #: paper observe compile-time *improvements* from specialization
    #: (smaller graphs flow through the expensive back end).
    compile_base = 120
    #: Price per MIR instruction visited by one pass.
    compile_per_instruction_pass = 1
    #: Price per LIR instruction for lowering + code generation.
    compile_per_lir = 5
    #: Price per live interval during register allocation (parameter
    #: specialization reduces register pressure, and with it this term
    #: — the effect the paper credits for improved compile times).
    compile_per_interval = 14

    #: Latency before the background compiler lane picks up a queued
    #: job (main-lane cycles between ``compile.enqueue`` and the lane
    #: starting work).  Models the hand-off to an off-main-thread
    #: helper; only charged when ``background_compile=True``.
    compile_dispatch = 100

    # -- transitions -----------------------------------------------------------------
    #: Price of one bailout (state reconstruction + interpreter re-entry).
    bailout = 200
    #: Price of discarding a specialized binary (invalidation bookkeeping).
    invalidation = 120
    #: Price of entering/leaving native code per call.
    native_call_entry = 4
    #: Price of a deoptless dispatch: consulting the specialization
    #: dispatch table and side-entering a sibling binary at an OSR
    #: point instead of falling back to the interpreter
    #: (docs/DEOPTLESS.md).  Charged on top of ``native_call_entry``.
    deoptless_dispatch = 30

    def native_cost(self, op):
        return self.native_costs.get(op, self.native_op)
