"""One JIT compilation: bytecode → MIR → passes → LIR → native.

:func:`compile_function` is the whole pipeline of the paper's Figure 5
right-hand side, parameterized by the optimization configuration and,
when parameter specialization is active, by the actual argument values
sitting on the interpreter's stack.
"""

from repro.errors import NotCompilable
from repro.jsvm.feedback import shape_ic_fingerprint
from repro.lir.native import generate_native
from repro.mir.builder import build_mir
from repro.opts.pass_manager import optimize

#: Test-only hook: when set to a callable, every freshly generated
#: binary is passed through it before being returned to the engine.
#: The differential fuzzer's self-test plants a deliberate miscompile
#: here (e.g. flipping one opcode) to prove the oracle catches a wrong
#: binary end-to-end.  Never set in production paths.
_MISCOMPILE_HOOK = None


class CompileResult(object):
    """A finished compilation plus its cost-model inputs."""

    __slots__ = ("native", "work", "codegen_stats", "graph", "mir_instructions")

    def __init__(self, native, work, codegen_stats, graph, mir_instructions=None):
        self.native = native
        self.work = work
        self.codegen_stats = codegen_stats
        self.graph = graph
        #: Size of the optimized MIR graph (for the compile trace).
        self.mir_instructions = mir_instructions


def compile_function(
    code,
    config,
    feedback=None,
    param_values=None,
    this_value=None,
    osr_pc=None,
    osr_args=None,
    osr_locals=None,
    generic=False,
    shape_guards=True,
    keep_graph=False,
    tracer=None,
):
    """Compile ``code`` under ``config``.

    ``param_values`` (plus ``this_value``) activates parameter
    specialization; ``osr_pc`` adds the OSR entry block; ``generic``
    disables type speculation entirely (used after repeated bailouts);
    ``shape_guards=False`` widens only the shape-guarded property fast
    paths while keeping type speculation (deoptless generalized
    siblings, docs/DEOPTLESS.md).
    ``tracer`` receives per-pass ``pass.run`` events (docs/TRACING.md).
    Raises :class:`NotCompilable` for functions the JIT refuses.
    """
    if not config.param_spec:
        param_values = None
        this_value = None
    graph = build_mir(
        code,
        feedback=feedback,
        param_values=param_values,
        this_value=this_value,
        osr_pc=osr_pc,
        osr_args=osr_args,
        osr_locals=osr_locals,
        generic=generic,
        shape_guards=shape_guards,
    )
    work = optimize(
        graph, config, loop_inversion_applied=config.loop_inversion, tracer=tracer
    )
    native, codegen_stats = generate_native(graph)
    # Stamp the IC snapshot the compile consumed: the engine compares
    # it against the live IC on a shape-retrain to detect recompiles
    # that would reproduce the binary bit-identically (retrain_noop,
    # docs/DEOPTLESS.md).  repr() keeps meta marshal-safe for the
    # persistent code cache.
    native.meta["ic_fingerprint"] = repr(
        shape_ic_fingerprint(feedback.shape_ics) if feedback is not None else ()
    )
    if _MISCOMPILE_HOOK is not None:
        _MISCOMPILE_HOOK(native)
    return CompileResult(
        native,
        work,
        codegen_stats,
        graph if keep_graph else None,
        mir_instructions=graph.num_instructions(),
    )
