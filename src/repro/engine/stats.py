"""Engine telemetry: every number the paper's evaluation reports.

The stats object is the single ledger for the deterministic cost
model: interpreted bytecode ops, native cycles, compilation cycles,
bailout/invalidation penalties.  ``total_cycles`` is the "runtime"
of Figure 9 (interpretation + compilation + native execution, as the
paper measures); ``compile_cycles`` alone is the Figure 9(c,d)
compilation overhead; per-function native sizes feed Figure 10; the
specialization counters feed the §4 policy paragraphs.
"""


#: Ledger keys that count *host-side* disk-cache traffic rather than
#: simulated work.  They legitimately differ between a cold and a warm
#: run of the same program (that is their whole point), so the
#: bit-identical round-trip checks (``tools/cache_roundtrip.py``,
#: ``tests/test_code_cache.py``) compare ledgers modulo this set.
DISK_TRAFFIC_KEYS = (
    "disk_hits",
    "disk_misses",
    "disk_stores",
    "disk_corrupt",
    "disk_evictions",
)


class EngineStats(object):
    """Counters for one engine run."""

    def __init__(self, cost_model):
        self.cost_model = cost_model

        # -- time components (cycles) ------------------------------------
        self.interp_ops = 0
        self.interp_calls = 0
        self.native_cycles = 0
        self.native_instructions = 0
        #: Compile cycles charged on the main lane (the engine stalled
        #: the program while compiling — the only compile cycles that
        #: enter ``total_cycles``).
        self.compile_cycles_stalled = 0
        #: Compile cycles charged to the background compiler lane
        #: (overlapped with interpretation; never on the critical path).
        self.compile_cycles_hidden = 0
        self.bailout_cycles = 0
        self.invalidation_cycles = 0
        #: Binaries produced by the background lane and installed at a
        #: main-lane poll point (``compile.install`` trace events).
        self.background_installs = 0

        # -- events --------------------------------------------------------
        self.compiles = 0
        self.osr_compiles = 0
        self.bailouts = 0
        self.invalidations = 0
        #: Inline-cache transitions: property sites learning a new
        #: receiver shape (folded from the interpreter at finish, so
        #: the count is backend-invariant).
        self.ic_transitions = 0
        #: Bailouts whose failing guard was a ``guardshape`` (a
        #: receiver arrived with a shape the site's IC had not seen
        #: when the binary was compiled).
        self.shape_guard_bailouts = 0
        #: code_id -> number of times that function was compiled.
        self.compiles_per_function = {}

        # -- deoptless dispatch (docs/DEOPTLESS.md) -----------------------------
        #: Dispatched re-entries: a guard miss that would have
        #: discarded the binary was instead routed into a sibling in
        #: the specialization dispatch table (via OSR or at the next
        #: call) without bailing out to recompile.
        self.deoptless_reentries = 0
        #: Dispatch-table misses: a precondition mismatch for which no
        #: compatible sibling existed yet (the polymorphism evidence
        #: that eventually triggers a generalized compile).
        self.deoptless_misses = 0
        #: Generalized siblings compiled after repeated table misses
        #: (guards widened so the table converges).
        self.deoptless_generalized_compiles = 0
        #: Shape-retrain discards skipped because the enriched IC
        #: would have produced a bit-identical binary (same content
        #: fingerprint); the existing binary was kept instead.
        self.retrain_noops = 0

        # -- specialization policy (§4) ---------------------------------------
        #: code ids ever compiled with parameter specialization.
        self.specialized_functions = set()
        #: code ids whose specialized binary was discarded.
        self.deoptimized_functions = set()

        # -- code size (Figure 10) ----------------------------------------------
        #: code_id -> smallest native size seen (any mode).
        self.code_sizes = {}
        #: code_id -> function name (for reports).
        self.function_names = {}

        # -- persistent disk code cache (folded at finish) --------------------
        #: Mirrors of the attached ``DiskCodeCache`` counters (all zero
        #: when the engine runs without one): warm-start hit-rate
        #: telemetry in the same ledger as everything else, so bench
        #: rows and ``--stats`` summaries carry it without consulting
        #: the cache object.
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_stores = 0
        self.disk_corrupt = 0
        self.disk_evictions = 0

        # -- misc -------------------------------------------------------------------
        self.not_compilable = set()

    # -- recording -----------------------------------------------------------

    def record_compile(self, code, native, work_units, codegen_stats, osr, hidden=False):
        cost = self.cost_model
        cycles = cost.compile_base
        cycles += work_units * cost.compile_per_instruction_pass
        cycles += codegen_stats["lir_instructions"] * cost.compile_per_lir
        cycles += codegen_stats["intervals"] * cost.compile_per_interval
        if hidden:
            self.compile_cycles_hidden += cycles
        else:
            self.compile_cycles_stalled += cycles
        self.compiles += 1
        if osr:
            self.osr_compiles += 1
        self.compiles_per_function[code.code_id] = (
            self.compiles_per_function.get(code.code_id, 0) + 1
        )
        size = native.size
        previous = self.code_sizes.get(code.code_id)
        if previous is None or size < previous:
            self.code_sizes[code.code_id] = size
        self.function_names[code.code_id] = code.name
        return cycles

    def record_bailout(self):
        self.bailouts += 1
        self.bailout_cycles += self.cost_model.bailout

    def record_invalidation(self):
        self.invalidations += 1
        self.invalidation_cycles += self.cost_model.invalidation

    # -- reporting --------------------------------------------------------------

    @property
    def interp_cycles(self):
        return (
            self.interp_ops * self.cost_model.interp_op
            + self.interp_calls * self.cost_model.interp_call
        )

    @property
    def compile_cycles(self):
        """All compilation work, whichever lane it ran on."""
        return self.compile_cycles_stalled + self.compile_cycles_hidden

    @property
    def total_cycles(self):
        """The paper's 'time measured in each run': interpretation,
        compilation and native execution (plus transition costs).

        Only *stalled* compile cycles count — background-lane work is
        overlapped with interpretation, exactly the stall off-main-
        thread compilation hides.  With ``background_compile=False``
        every compile is stalled, so this reduces to the original sum.
        """
        return (
            self.interp_cycles
            + self.native_cycles
            + self.compile_cycles_stalled
            + self.bailout_cycles
            + self.invalidation_cycles
        )

    @property
    def successfully_specialized(self):
        return self.specialized_functions - self.deoptimized_functions

    @property
    def recompilations(self):
        """Compilations beyond the first, summed over functions."""
        return sum(max(0, count - 1) for count in self.compiles_per_function.values())

    def as_dict(self):
        """The full ledger as a JSON-safe dict with a stable key set.

        Every counter the stats object tracks, flattened: cycle
        components, event counts, per-function maps (keyed by code id)
        and the specialization-policy sets as sorted lists.  The key
        set is documented in ``docs/STATS.md`` and schema-checked by
        the documentation tests, exactly like the trace event schema.
        """
        return {
            "total_cycles": self.total_cycles,
            "interp_cycles": self.interp_cycles,
            "native_cycles": self.native_cycles,
            "compile_cycles": self.compile_cycles,
            "compile_cycles_stalled": self.compile_cycles_stalled,
            "compile_cycles_hidden": self.compile_cycles_hidden,
            "bailout_cycles": self.bailout_cycles,
            "invalidation_cycles": self.invalidation_cycles,
            "background_installs": self.background_installs,
            "interp_ops": self.interp_ops,
            "interp_calls": self.interp_calls,
            "native_instructions": self.native_instructions,
            "compiles": self.compiles,
            "osr_compiles": self.osr_compiles,
            "recompilations": self.recompilations,
            "bailouts": self.bailouts,
            "invalidations": self.invalidations,
            "ic_transitions": self.ic_transitions,
            "shape_guard_bailouts": self.shape_guard_bailouts,
            "deoptless_reentries": self.deoptless_reentries,
            "deoptless_misses": self.deoptless_misses,
            "deoptless_generalized_compiles": self.deoptless_generalized_compiles,
            "retrain_noops": self.retrain_noops,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_stores": self.disk_stores,
            "disk_corrupt": self.disk_corrupt,
            "disk_evictions": self.disk_evictions,
            "specialized_functions": sorted(self.specialized_functions),
            "successfully_specialized": sorted(self.successfully_specialized),
            "deoptimized_functions": sorted(self.deoptimized_functions),
            "not_compilable": sorted(self.not_compilable),
            "compiles_per_function": dict(self.compiles_per_function),
            "code_sizes": dict(self.code_sizes),
            "function_names": dict(self.function_names),
        }

    def summary(self):
        return {
            "total_cycles": self.total_cycles,
            "interp_cycles": self.interp_cycles,
            "native_cycles": self.native_cycles,
            "compile_cycles": self.compile_cycles,
            "compile_cycles_stalled": self.compile_cycles_stalled,
            "compile_cycles_hidden": self.compile_cycles_hidden,
            "bailout_cycles": self.bailout_cycles,
            "compiles": self.compiles,
            "background_installs": self.background_installs,
            "recompilations": self.recompilations,
            "bailouts": self.bailouts,
            "ic_transitions": self.ic_transitions,
            "shape_guard_bailouts": self.shape_guard_bailouts,
            "deoptless_reentries": self.deoptless_reentries,
            "deoptless_misses": self.deoptless_misses,
            "retrain_noops": self.retrain_noops,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "specialized": len(self.specialized_functions),
            "successful": len(self.successfully_specialized),
            "deoptimized": len(self.deoptimized_functions),
        }
