"""The JIT engine: compilation pipeline, policy, caching and stats.

:class:`~repro.engine.runtime_engine.Engine` is the orchestrator the
interpreter consults on calls and loop back edges — the analogue of the
SpiderMonkey/IonMonkey interplay in the paper's Figure 5.
"""

from repro.engine.config import (
    OptConfig,
    CostModel,
    BASELINE,
    FULL_SPEC,
    PAPER_CONFIGS,
)
from repro.engine.runtime_engine import Engine, run_program
from repro.engine.stats import EngineStats

__all__ = [
    "OptConfig",
    "CostModel",
    "BASELINE",
    "FULL_SPEC",
    "PAPER_CONFIGS",
    "Engine",
    "EngineStats",
    "run_program",
]
