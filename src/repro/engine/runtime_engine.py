"""The JIT engine: hotness policy, specialization cache, deoptimization.

This module implements the paper's §4 "Specialization policy":

* Every function the interpreter finds hot is compiled; with parameter
  specialization enabled, the compiler bakes the current actual
  arguments in as constants and the engine caches that argument set.
* A later call with the *same* arguments reuses the specialized binary
  (the cache hit the paper's Figure 2 shows happens ~60% of the time
  on the web).
* A call with *different* arguments discards the binary, recompiles
  the function generically, and marks it never-specialize-again — one
  cached binary per function, at most one specialization attempt.

It also implements on-stack replacement (both entry points of Figure
6), bailout handling (rebuilding the interpreter frame from guard
snapshots and resuming at the recorded bytecode pc), bailout-driven
type-feedback updates, and a repeated-bailout escape hatch that
recompiles without type speculation.
"""

import os

from repro.engine.bailout import describe_bailout
from repro.engine.compile_queue import CompileJob, CompileQueue
from repro.engine.config import BASELINE, CostModel
from repro.engine.jit import compile_function
from repro.engine.stats import EngineStats
from repro.errors import NotCompilable
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.feedback import TypeFeedback, shape_ic_fingerprint
from repro.jsvm.interpreter import Frame, Interpreter
from repro.jsvm.values import (
    NULL,
    UNDEFINED,
    _KEY_TYPE_NAMES,
    arguments_key,
    value_key,
)
from repro.lir.closures import ClosureExecutor
from repro.lir.executor import Bailout, NativeExecutor
from repro.lir.native import FAULT_INJECTED
from repro.lir.wholefn import WholeExecutor
from repro.opts.loop_inversion import rotate_loops

#: Compile a function once it has been called this many times...
HOT_CALL_THRESHOLD = 10
#: ...or once its loops have taken this many back edges.
OSR_BACKEDGE_THRESHOLD = 100
#: Give up on type speculation after this many bailouts.
BAILOUT_LIMIT = 8

#: The selectable native-executor backends.  All are bit-identical in
#: every observable (stats, cycles, output, traces; docs/PERF.md):
#: "simple" is the reference re-decoding interpreter loop, "closure"
#: pre-compiles each binary into per-block bound Python closures (the
#: default), and "whole" lowers each binary to a single dispatch-free
#: Python function (docs/CODEGEN.md) — the fastest backend.
EXECUTOR_BACKENDS = {
    "simple": NativeExecutor,
    "closure": ClosureExecutor,
    "whole": WholeExecutor,
}

#: Environment override for the executor backend (``REPRO_EXECUTOR=simple``
#: is the escape hatch if the closure backend ever misbehaves).
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Backend used when neither the constructor argument nor the
#: environment variable picks one.
DEFAULT_EXECUTOR_BACKEND = "closure"


def resolve_executor_backend(name=None):
    """Pick the executor backend: explicit arg > $REPRO_EXECUTOR > default.

    Returns the backend name; raises ``ValueError`` for unknown names.
    """
    if name is None:
        name = os.environ.get(EXECUTOR_ENV_VAR) or DEFAULT_EXECUTOR_BACKEND
    if name not in EXECUTOR_BACKENDS:
        raise ValueError(
            "unknown executor backend %r; available: %s"
            % (name, ", ".join(sorted(EXECUTOR_BACKENDS)))
        )
    return name


class FunctionState(object):
    """Per-code-object JIT state.

    ``native`` is the currently active binary; ``spec_cache`` maps
    argument-set keys to previously specialized binaries.  The paper
    caches exactly one binary per function (capacity 1, the default);
    the §6 extension makes the capacity configurable so the "best
    tradeoff" hypothesis can be tested (see the cache-capacity
    ablation bench).
    """

    __slots__ = (
        "code",
        "call_count",
        "backedge_count",
        "native",
        "spec_key",
        "osr_state_key",
        "spec_cache",
        "never_specialize",
        "force_generic",
        "not_compilable",
        "bailout_count",
        "generalized",
        "generalized_osr",
        "deoptless_misses",
        "miss_keys",
        "last_call",
    )

    def __init__(self, code):
        self.code = code
        self.call_count = 0
        self.backedge_count = 0
        self.native = None
        self.spec_key = None
        self.osr_state_key = None
        #: spec key -> (native, osr_state_key)
        self.spec_cache = {}
        self.never_specialize = False
        self.force_generic = False
        self.not_compilable = False
        self.bailout_count = 0
        #: The deoptless dispatch table's convergence target: the
        #: call-entry generalized sibling, a guard-widened binary whose
        #: entry preconditions accept any argument values
        #: (docs/DEOPTLESS.md).  Retained alongside ``spec_cache`` —
        #: together with ``generalized_osr`` they are the function's
        #: specialization dispatch table.
        self.generalized = None
        #: The OSR-entry generalized sibling: same widened guards plus
        #: an OSR entry for mid-loop re-entry.  Kept as a separate table
        #: line because the OSR entry has a real per-iteration price
        #: (it blocks loop-invariant hoisting past the entry merge), so
        #: the call path must never be stuck running it.
        self.generalized_osr = None
        #: Dispatch-table misses (precondition mismatches with no
        #: compatible sibling); at the engine's threshold the function
        #: is judged genuinely polymorphic and a generalized sibling
        #: is compiled.
        self.deoptless_misses = 0
        #: Spec-key miss counts: how often each argument-set key has
        #: reached the call path without a matching table line.  A key
        #: seen twice marks a *recurring* precondition regime and earns
        #: its own specialized sibling while the table has room
        #: (docs/DEOPTLESS.md); bounded — cleared at
        #: ``_MISS_KEY_BOUND`` so churning identities cannot grow it.
        self.miss_keys = {}
        #: Most recent call's ``(function, this_value, args)`` — host
        #: bookkeeping for the post-run entry-guard re-entry harness
        #: (``repro.engine.bailout.exercise_entry_guards``).
        self.last_call = None


#: Cap on ``FunctionState.miss_keys``: past this many distinct miss
#: keys the recurrence counters reset, bounding host memory against
#: callers that never repeat an argument set.
_MISS_KEY_BOUND = 64


def _spec_key(this_value, args):
    return (value_key(this_value), arguments_key(args))


def _key_recurrable(key):
    """Whether a spec key can match again after its values die.

    Primitive components match by value, so the same regime can return
    forever; a ``('ref', id)`` component matches by identity and dies
    with the object, so such a key marks a one-allocation regime that
    is not worth a specialized table line of its own.
    """
    this_key, args_key = key
    if this_key[0] == "ref":
        return False
    for part in args_key:
        if part[0] == "ref":
            return False
    return True


def _value_matches_key(key, value):
    """Whether ``value_key(value)`` would equal ``key``, sans allocation.

    Mirrors tuple equality on :func:`value_key` results exactly — the
    ``is`` check before ``==`` preserves the identity shortcut tuple
    comparison applies per element (it makes a repeatedly-passed NaN
    object match itself, as the materialized keys would).
    """
    name = _KEY_TYPE_NAMES.get(type(value))
    if name is not None:
        return key[0] == name and (key[1] is value or key[1] == value)
    if value is UNDEFINED:
        return key[0] == "undefined"
    if value is NULL:
        return key[0] == "null"
    return key[0] == "ref" and key[1] == id(value)


def _spec_key_matches(stored, this_value, args):
    """``_spec_key(this_value, args) == stored`` without building the key.

    The per-call fast path of the specialization cache: a primary-entry
    hit (the overwhelmingly common case) costs no tuple allocations.
    """
    if stored is None:
        return False
    this_key, args_key = stored
    if len(args_key) != len(args):
        return False
    if not _value_matches_key(this_key, this_value):
        return False
    for key, value in zip(args_key, args):
        if not _value_matches_key(key, value):
            return False
    return True


def _osr_key(args, locals_):
    return tuple(value_key(v) for v in args) + tuple(value_key(v) for v in locals_)


class Engine(object):
    """The orchestrator the interpreter consults (Figure 5)."""

    def __init__(
        self,
        config=BASELINE,
        cost_model=None,
        runtime=None,
        profiler=None,
        hot_call_threshold=HOT_CALL_THRESHOLD,
        osr_backedge_threshold=OSR_BACKEDGE_THRESHOLD,
        bailout_limit=BAILOUT_LIMIT,
        spec_cache_capacity=1,
        tracer=None,
        executor_backend=None,
        cycle_profiler=None,
        background_compile=False,
        code_cache=None,
        fault_injector=None,
        metrics=None,
        deoptless=False,
        deoptless_miss_threshold=2,
        deoptless_table_capacity=4,
    ):
        self.config = config
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.stats = EngineStats(self.cost_model)
        #: Optional structured event tracer (repro.telemetry.tracing);
        #: None (the default) means no events and zero overhead.
        self.tracer = tracer
        #: Optional cycle-exact profiler (repro.telemetry.profiler).
        #: Distinct from ``profiler`` (the §2 call histogram): this one
        #: attributes every cycle of ``stats.total_cycles`` to a
        #: (function, tier, block) triple.  None means zero overhead.
        self.cycle_profiler = cycle_profiler
        self.interpreter = Interpreter(
            runtime=runtime,
            engine=self,
            profiler=profiler,
            tracer=tracer,
            cycle_profiler=cycle_profiler,
        )
        #: Which native-executor backend runs compiled binaries; both
        #: are observably identical (docs/PERF.md), "closure" is fast.
        self.executor_backend = resolve_executor_backend(executor_backend)
        self.executor = EXECUTOR_BACKENDS[self.executor_backend](
            self.interpreter, self.cost_model
        )
        if cycle_profiler is not None:
            cycle_profiler.bind_cost_model(self.cost_model)
            self.executor.cycle_profiler = cycle_profiler
        #: Optional chaos-deopt injector
        #: (``repro.engine.bailout.GuardFaultInjector``).  Armed, both
        #: executor backends consult it before every guard and force
        #: the selected ones to fail with exact recovery values; pair
        #: with a large ``bailout_limit`` for full-sweep runs.
        self.fault_injector = fault_injector
        if fault_injector is not None:
            self.executor.fault_injector = fault_injector
        if tracer is not None:
            tracer.bind_clock(self.trace_clock)
        self.states = {}
        self.hot_call_threshold = hot_call_threshold
        self.osr_backedge_threshold = osr_backedge_threshold
        self.bailout_limit = bailout_limit
        #: Specialized binaries cached per function.  1 is the paper's
        #: policy; larger values implement its §6 "different
        #: heuristics" follow-up (a function deoptimizes only after
        #: exceeding the capacity in distinct argument sets).
        self.spec_cache_capacity = spec_cache_capacity
        #: Deterministic background-compilation lane (docs/
        #: COMPILE_PIPELINE.md).  Off by default: ``False`` keeps every
        #: compile synchronous and all observables bit-identical to an
        #: engine without the lane.
        self.background_compile = background_compile
        self.compile_queue = (
            CompileQueue(self.cost_model.compile_dispatch)
            if background_compile
            else None
        )
        #: Optional persistent cross-run code cache
        #: (``repro.cache.DiskCodeCache``).  A hit skips the
        #: MIR→LIR→codegen pipeline on the host — pure wall-clock; the
        #: simulated compile cycles are charged identically either way.
        self.code_cache = code_cache
        #: Optional deterministic metrics registry
        #: (``repro.telemetry.metrics.MetricsRegistry``).  None (the
        #: default) means zero events and zero overhead — the same
        #: contract as the tracer; attached, the registry's clock is
        #: the engine's cycle clock and its collector samples the live
        #: engine state at every snapshot (docs/METRICS.md).
        self.metrics = metrics
        if metrics is not None:
            metrics.bind_clock(self.trace_clock)
            metrics.collectors.append(self._collect_metrics)
        #: Deoptless recovery (docs/DEOPTLESS.md): keep every compiled
        #: sibling in the per-function dispatch table and, on a guard
        #: precondition miss, dispatch into a compatible sibling (via
        #: OSR at the next loop back edge, or at the next call) instead
        #: of the §4 discard-and-recompile.  Off by default: ``False``
        #: keeps every observable bit-identical to the paper's policy.
        self.deoptless = deoptless
        #: Table misses per function before the engine judges it
        #: genuinely polymorphic and compiles one generalized sibling
        #: (guards widened to accept anything) so the table converges.
        self.deoptless_miss_threshold = deoptless_miss_threshold
        #: Specialized table lines per function under deoptless: a
        #: recurring argument-set regime earns its own sibling while
        #: the table is below this; past it, calls fall through to the
        #: generalized catch-all.  Never below the engine's plain
        #: ``spec_cache_capacity``.
        self.deoptless_table_capacity = max(
            spec_cache_capacity, deoptless_table_capacity
        )

    # -- program entry -------------------------------------------------------

    def run_source(self, source):
        """Compile and run a whole script under this engine."""
        code = compile_source(source)
        return self.run_code(code)

    def run_code(self, code):
        if self.config.loop_inversion:
            rotate_loops(code)
        self.interpreter.run_code(code)
        self.finish()
        return self.interpreter.runtime.printed

    def finish(self):
        """Fold the live counters into the stats ledger.

        When both a tracer and a cycle profiler are attached, a single
        ``profile.summary`` event is appended here — after every other
        event of the run, so the preceding stream (sequence numbers
        included) is exactly what an unprofiled run would record.
        """
        self.stats.interp_ops = self.interpreter.ops_executed
        self.stats.ic_transitions = self.interpreter.ic_transitions
        self.stats.native_cycles = self.executor.cycles
        self.stats.native_instructions = self.executor.instructions_executed
        cache = self.code_cache
        if cache is not None:
            self.stats.disk_hits = cache.hits
            self.stats.disk_misses = cache.misses
            self.stats.disk_stores = cache.stores
            self.stats.disk_corrupt = cache.corrupt
            self.stats.disk_evictions = cache.evictions
        if self.metrics is not None:
            self.metrics.finalize()
        if self.tracer is not None and self.cycle_profiler is not None:
            self.tracer.emit(
                "profile",
                "summary",
                total_cycles=self.stats.total_cycles,
                **self.cycle_profiler.summary()
            )

    def trace_clock(self):
        """The deterministic cycle clock trace events are stamped with.

        Same composition as ``EngineStats.total_cycles`` but computed
        from the live counters (``finish`` only folds them in at the
        end of a run), so it is monotonically non-decreasing over the
        whole execution.
        """
        cost = self.cost_model
        stats = self.stats
        return (
            self.interpreter.ops_executed * cost.interp_op
            + stats.interp_calls * cost.interp_call
            + self.executor.cycles
            + stats.compile_cycles_stalled
            + stats.bailout_cycles
            + stats.invalidation_cycles
        )

    # -- metrics collection (docs/METRICS.md) --------------------------------------

    def _collect_metrics(self):
        """Sample the live engine state into the metrics registry.

        Registered as the registry's collector and run before every
        snapshot: counters mirrored from authoritative ledgers (stats,
        queue, disk cache) are re-read, occupancy gauges are recomputed.
        Pure reads — never touches the cost model, so attaching metrics
        cannot perturb any observable.
        """
        registry = self.metrics
        stats = self.stats
        cost = self.cost_model
        total_calls = 0
        spec_entries = 0
        ic_mono = ic_poly = ic_mega = 0
        for state in self.states.values():
            total_calls += state.call_count
            spec_entries += len(state.spec_cache)
            feedback = state.code.feedback
            if feedback is not None:
                for pc in feedback.shape_ics:
                    ic_state = feedback.ic_state(pc)
                    if ic_state == "mono":
                        ic_mono += 1
                    elif ic_state == "poly":
                        ic_poly += 1
                    elif ic_state == "mega":
                        ic_mega += 1
        registry.set_counter("repro_engine_calls_interp_total", stats.interp_calls)
        registry.set_counter(
            "repro_engine_calls_native_total", total_calls - stats.interp_calls
        )
        registry.set_counter("repro_engine_compiles_total", stats.compiles)
        registry.set_counter("repro_engine_osr_compiles_total", stats.osr_compiles)
        registry.set_counter(
            "repro_engine_recompilations_total", stats.recompilations
        )
        registry.set_counter("repro_engine_bailouts_total", stats.bailouts)
        registry.set_counter(
            "repro_engine_shape_guard_bailouts_total", stats.shape_guard_bailouts
        )
        registry.set_counter(
            "repro_engine_invalidations_total", stats.invalidations
        )
        registry.set_counter(
            "repro_engine_ic_transitions_total", self.interpreter.ic_transitions
        )
        registry.set_counter(
            "repro_engine_retrain_noops_total", stats.retrain_noops
        )
        registry.set_counter(
            "repro_deoptless_reentries_total", stats.deoptless_reentries
        )
        registry.set_counter("repro_deoptless_misses_total", stats.deoptless_misses)
        registry.set_counter(
            "repro_deoptless_generalized_compiles_total",
            stats.deoptless_generalized_compiles,
        )
        registry.set_gauge("repro_engine_total_cycles", self.trace_clock())
        registry.set_gauge(
            "repro_engine_interp_cycles",
            self.interpreter.ops_executed * cost.interp_op
            + stats.interp_calls * cost.interp_call,
        )
        registry.set_gauge("repro_engine_native_cycles", self.executor.cycles)
        registry.set_gauge(
            "repro_engine_compile_cycles_stalled", stats.compile_cycles_stalled
        )
        registry.set_gauge(
            "repro_engine_compile_cycles_hidden", stats.compile_cycles_hidden
        )
        registry.set_gauge("repro_engine_bailout_cycles", stats.bailout_cycles)
        registry.set_gauge(
            "repro_engine_invalidation_cycles", stats.invalidation_cycles
        )
        registry.set_gauge("repro_engine_functions_hot", len(self.states))
        registry.set_gauge("repro_spec_cache_entries", spec_entries)
        registry.set_gauge("repro_engine_ic_sites_mono", ic_mono)
        registry.set_gauge("repro_engine_ic_sites_poly", ic_poly)
        registry.set_gauge("repro_engine_ic_sites_mega", ic_mega)
        queue = self.compile_queue
        if queue is not None:
            registry.set_counter("repro_compile_queue_enqueued_total", queue.enqueued)
            registry.set_counter(
                "repro_compile_queue_installed_total", queue.installed
            )
            registry.set_counter("repro_compile_queue_dropped_total", queue.dropped)
            registry.set_gauge("repro_compile_queue_depth", len(queue.pending))
            registry.set_gauge(
                "repro_compile_queue_depth_high_water", queue.depth_high_water
            )
            registry.set_gauge("repro_compile_queue_lane_cycle", queue.lane_high_water)
        cache = self.code_cache
        if cache is not None:
            registry.set_counter("repro_cache_disk_hits_total", cache.hits)
            registry.set_counter("repro_cache_disk_misses_total", cache.misses)
            registry.set_counter("repro_cache_disk_stores_total", cache.stores)
            registry.set_counter(
                "repro_cache_disk_evictions_total", cache.evictions
            )
            registry.set_counter("repro_cache_disk_corrupt_total", cache.corrupt)
            registry.set_counter(
                "repro_cache_disk_uncacheable_total", cache.uncacheable
            )

    # -- state -------------------------------------------------------------------

    def _state(self, code):
        state = self.states.get(code.code_id)
        if state is None:
            state = FunctionState(code)
            self.states[code.code_id] = state
        return state

    # -- call-path hook (interpreter.call_function) ----------------------------------

    def try_native_call(self, function, this_value, args):
        """Count the call; maybe compile; maybe execute natively.

        Returns ``(handled, result)``.
        """
        code = function.code
        state = self._state(code)
        state.call_count += 1
        state.last_call = (function, this_value, args)
        metrics = self.metrics
        if metrics is not None:
            metrics.maybe_snapshot()
        tracer = self.tracer
        if (
            tracer is not None
            and state.call_count == self.hot_call_threshold
            and not state.not_compilable
        ):
            tracer.emit(
                "interp",
                "hot_call",
                fn=code.name,
                code_id=code.code_id,
                calls=state.call_count,
            )
        if state.not_compilable:
            self.stats.interp_calls += 1
            if self.cycle_profiler is not None:
                self.cycle_profiler.interp_call()
            return False, None
        if code.feedback is None:
            code.feedback = TypeFeedback(code.num_params)
        code.feedback.record_args(args, this_value)

        queue = self.compile_queue
        if queue is not None and queue.pending:
            self._install_ready(queue)
        # Lane policy: a loop-free body is cheap to keep interpreting
        # while the lane works, so its compile is worth hiding; a body
        # that takes backedges costs far more to interpret once than
        # the compile stall it would hide, so it compiles synchronously
        # (and its loops stay eligible for OSR).
        use_queue = queue is not None and state.backedge_count == 0

        native = state.native
        if native is not None:
            if native.meta["specialized"]:
                if _spec_key_matches(state.spec_key, this_value, args):
                    if metrics is not None:
                        metrics.inc("repro_spec_cache_hits_total")
                    if tracer is not None:
                        tracer.emit(
                            "cache",
                            "hit",
                            fn=code.name,
                            code_id=code.code_id,
                            key=repr(state.spec_key),
                            primary=True,
                        )
                    return True, self._run_call(state, function, this_value, args)
                key = _spec_key(this_value, args)
                cached = state.spec_cache.get(key)
                if cached is not None:
                    # Cache hit on a previously specialized set (only
                    # possible with capacity > 1, the §6 extension).
                    state.native, state.osr_state_key = cached
                    state.spec_key = key
                    if metrics is not None:
                        metrics.inc("repro_spec_cache_hits_total")
                    if tracer is not None:
                        tracer.emit(
                            "cache",
                            "hit",
                            fn=code.name,
                            code_id=code.code_id,
                            key=repr(key),
                            primary=False,
                        )
                    return True, self._run_call(state, function, this_value, args)
                if metrics is not None:
                    metrics.inc("repro_spec_cache_misses_total")
                if tracer is not None:
                    tracer.emit(
                        "cache",
                        "miss",
                        fn=code.name,
                        code_id=code.code_id,
                        key=repr(key),
                        entries=len(state.spec_cache),
                    )
                if not self.deoptless and len(state.spec_cache) < self.spec_cache_capacity:
                    # Room for another specialized binary (the §6
                    # eager extension; under deoptless, growth instead
                    # waits for the key to recur — ``_deoptless_call``).
                    if use_queue:
                        # Keep running the current binary's sibling in
                        # the interpreter while the lane compiles the
                        # new set; no discard — there is still room.
                        self._enqueue_compile(state, function, this_value, args)
                        self.stats.interp_calls += 1
                        if self.cycle_profiler is not None:
                            self.cycle_profiler.interp_call()
                        return False, None
                    if self._compile(state, function, this_value, args, osr_frame=None):
                        return True, self._run_call(state, function, this_value, args)
                if self.deoptless:
                    # Deoptless: the table is over capacity but nothing
                    # is discarded — dispatch into the generalized
                    # sibling (compiling it once the miss count proves
                    # real polymorphism), else interpret this call.
                    if self._deoptless_call(state, function, this_value, args, use_queue):
                        return True, self._run_call(state, function, this_value, args)
                else:
                    # §4: one distinct argument set too many — discard,
                    # mark, recompile in IonMonkey's traditional mode.
                    self._discard_specialized(state, "new-args")
            else:
                if self.deoptless:
                    dispatched = False
                    key = _spec_key(this_value, args)
                    cached = state.spec_cache.get(key)
                    if cached is not None and cached[0] is not state.native:
                        # A generalized sibling is active but the table
                        # still holds specialized siblings: when this
                        # call's values satisfy one's baked
                        # preconditions, dispatch back into it — the
                        # specialized code is strictly faster in its
                        # own steady state.
                        state.native, state.osr_state_key = cached
                        state.spec_key = key
                        self._charge_dispatch(state.native)
                        self.stats.deoptless_reentries += 1
                        dispatched = True
                        if metrics is not None:
                            metrics.inc("repro_deoptless_reentries_total")
                            metrics.inc("repro_spec_cache_hits_total")
                        if tracer is not None:
                            tracer.emit(
                                "deoptless",
                                "dispatch",
                                fn=code.name,
                                code_id=code.code_id,
                                kind="respecialize",
                                osr_pc=None,
                                misses=state.deoptless_misses,
                            )
                    if (
                        not dispatched
                        and cached is None
                        and self._deoptless_promote(
                            state, function, this_value, args, key, use_queue
                        )
                    ):
                        # A recurring regime reached the generalized
                        # catch-all often enough to earn its own line.
                        dispatched = True
                    if (
                        not dispatched
                        and state.native is state.generalized_osr
                        and state.native is not state.generalized
                    ):
                        # A call landed on the OSR-entry sibling, which
                        # pays the entry-merge price on every loop
                        # iteration: move the call path onto the lean
                        # call-entry line, compiling it on first need.
                        if state.generalized is None:
                            self._generalize(
                                state, function, this_value, args, osr_frame=None
                            )
                        if state.generalized is not None:
                            self._dispatch_into(
                                state, state.generalized, "call", None
                            )
                return True, self._run_call(state, function, this_value, args)

        if state.native is None and state.call_count >= self.hot_call_threshold:
            if use_queue:
                # Background lane: enqueue and keep interpreting; the
                # binary installs at a later poll point.
                self._enqueue_compile(state, function, this_value, args)
            elif self._compile(state, function, this_value, args, osr_frame=None):
                return True, self._run_call(state, function, this_value, args)

        self.stats.interp_calls += 1
        if self.cycle_profiler is not None:
            self.cycle_profiler.interp_call()
        return False, None

    # -- back-edge hook (interpreter loops) ----------------------------------------------

    def on_backedge(self, interpreter, frame, target_pc):
        """Maybe OSR into native code at a hot loop's back edge.

        Returns None (keep interpreting), ``("return", value)`` when
        native code finished the frame, or ``("resume", (pc, stack))``
        after a bailout.
        """
        code = frame.code
        state = self._state(code)
        if self.metrics is not None:
            self.metrics.maybe_snapshot()
        queue = self.compile_queue
        if queue is not None and queue.pending:
            self._install_ready(queue)
        if state.not_compilable:
            return None
        if queue is not None and queue.has_job(code.code_id):
            # A compile for this function is already in flight on the
            # background lane (Ion's "compiling" sentinel): keep
            # interpreting rather than racing it with a synchronous
            # OSR compile of the same function.
            state.backedge_count += 1
            return None
        state.backedge_count += 1
        tracer = self.tracer
        if tracer is not None and state.backedge_count == self.osr_backedge_threshold:
            tracer.emit(
                "osr",
                "trip",
                fn=code.name,
                code_id=code.code_id,
                backedges=state.backedge_count,
                target_pc=target_pc,
            )
        if state.backedge_count < self.osr_backedge_threshold:
            # A cached binary with a matching OSR entry can be re-entered
            # cheaply even below the compile threshold.
            if not self._can_reenter_osr(state, frame, target_pc):
                return None
        native = state.native
        needs_osr_compile = (
            native is None
            or native.osr_index is None
            or native.meta.get("osr_pc") != target_pc
        )
        if not needs_osr_compile and not self._can_reenter_osr(state, frame, target_pc):
            if self.deoptless:
                # Dispatched OSR: the active binary's baked-in OSR
                # preconditions no longer hold, but the dispatch table
                # may hold (or earn) a generalized sibling whose OSR
                # entry accepts this frame unconditionally.  Nothing is
                # discarded either way.
                if not self._deoptless_osr(state, frame, target_pc):
                    return None
                needs_osr_compile = False
            else:
                # A specialized binary whose baked-in OSR state no longer
                # matches this frame (e.g. we bailed out mid-loop and the
                # locals moved on).  Per the §4 policy this is a different
                # input: discard, mark, and recompile generically below.
                self._discard_specialized(state, "osr-state-mismatch")
                native = None
                needs_osr_compile = True
        elif (
            needs_osr_compile
            and self.deoptless
            and native is not None
            and (native is state.generalized or native is state.generalized_osr)
        ):
            # The generalized sibling lacks a usable OSR entry at this
            # loop: widen it in place (recompile generalized with the
            # OSR entry) rather than growing a new specialized table
            # line that would miss again on the next shape/value flip.
            if not self._deoptless_osr(state, frame, target_pc):
                return None
            needs_osr_compile = False
        if needs_osr_compile:
            if native is not None and native.meta["specialized"]:
                # Keep the specialized call-entry binary; adding an OSR
                # entry means recompiling with the same constants.
                if _spec_key(frame.this_value, frame.args) != state.spec_key:
                    return None
            if code.feedback is None:
                code.feedback = TypeFeedback(code.num_params)
            if not self._compile(
                state, frame.function, frame.this_value, frame.args, osr_frame=(target_pc, frame)
            ):
                return None
        if self.metrics is not None:
            self.metrics.inc("repro_engine_osr_enters_total")
        if tracer is not None:
            tracer.emit(
                "osr",
                "enter",
                fn=code.name,
                code_id=code.code_id,
                osr_pc=target_pc,
                backedges=state.backedge_count,
            )
        return self._run_osr(state, frame, target_pc)

    def _can_reenter_osr(self, state, frame, target_pc):
        native = state.native
        if native is None or native.osr_index is None:
            return False
        if native.meta.get("osr_pc") != target_pc:
            return False
        if native.meta["specialized"]:
            return state.osr_state_key == _osr_key(frame.args, frame.locals)
        return True

    # -- deoptless dispatch (docs/DEOPTLESS.md) ----------------------------------------------

    def _charge_dispatch(self, native):
        """Charge the table-consult + side-entry cost of one dispatch."""
        cost = self.cost_model.deoptless_dispatch
        self.executor.cycles += cost
        if self.cycle_profiler is not None:
            self.cycle_profiler.charge_entry(native, cost)

    def _dispatch_into(self, state, native, kind, osr_pc):
        """Activate a dispatch-table sibling for immediate re-entry."""
        state.native = native
        state.spec_key = None
        state.osr_state_key = None
        self._charge_dispatch(native)
        self.stats.deoptless_reentries += 1
        if self.metrics is not None:
            self.metrics.inc("repro_deoptless_reentries_total")
        if self.tracer is not None:
            self.tracer.emit(
                "deoptless",
                "dispatch",
                fn=state.code.name,
                code_id=state.code.code_id,
                kind=kind,
                osr_pc=osr_pc,
                misses=state.deoptless_misses,
            )

    def _deoptless_miss(self, state, reason):
        """Count one dispatch-table miss (no compatible sibling yet)."""
        state.deoptless_misses += 1
        self.stats.deoptless_misses += 1
        if self.metrics is not None:
            self.metrics.inc("repro_deoptless_misses_total")
        if self.tracer is not None:
            self.tracer.emit(
                "deoptless",
                "miss",
                fn=state.code.name,
                code_id=state.code.code_id,
                reason=reason,
                misses=state.deoptless_misses,
            )

    def _generalize(self, state, function, this_value, args, osr_frame):
        """Compile the generalized sibling and record it in the table.

        "Generalized" widens exactly the guards that churn: no baked
        argument values and no shape guards (property ops compile to
        their generic forms), while type speculation — which converges
        even on polymorphic functions — stays on, so the sibling's
        steady state matches the §4 policy's post-discard code.  The
        sibling lands in the table line matching its entry kind:
        ``generalized_osr`` when compiled with an OSR entry,
        ``generalized`` (the call-entry line) otherwise.
        Returns the new native, or None when the JIT refuses.
        """
        produced = self._produce(
            state, function, this_value, args, osr_frame=osr_frame, generalized=True
        )
        if produced is None:
            return None
        result, _cycles = produced
        if osr_frame is not None:
            state.generalized_osr = result.native
        else:
            state.generalized = result.native
        self.stats.deoptless_generalized_compiles += 1
        if self.metrics is not None:
            self.metrics.inc("repro_deoptless_generalized_compiles_total")
        if self.tracer is not None:
            self.tracer.emit(
                "deoptless",
                "generalize",
                fn=state.code.name,
                code_id=state.code.code_id,
                osr=osr_frame is not None,
                osr_pc=None if osr_frame is None else osr_frame[0],
                misses=state.deoptless_misses,
            )
        return result.native

    def _deoptless_promote(self, state, function, this_value, args, key, use_queue):
        """Grow a specialized table line for a recurring argument set.

        Counts ``key`` against the function's recurrence counters and,
        on its second arrival while the table has room, compiles the
        specialized sibling for it — the table's "multiple compiled
        versions keyed by guard preconditions" (docs/DEOPTLESS.md).
        One-allocation keys (identity-matched components) never earn a
        line.  Returns True when ``state.native`` is now that sibling;
        False also covers the background lane, which hides the compile
        and installs the line at a later poll point.
        """
        if not _key_recurrable(key):
            return False
        if len(state.miss_keys) >= _MISS_KEY_BOUND:
            state.miss_keys.clear()
        seen = state.miss_keys.get(key, 0) + 1
        state.miss_keys[key] = seen
        if seen < 2 or len(state.spec_cache) >= self.deoptless_table_capacity:
            return False
        if use_queue:
            self._enqueue_compile(state, function, this_value, args)
            return False
        if self._compile(state, function, this_value, args, osr_frame=None):
            state.miss_keys.pop(key, None)
            return True
        return False

    def _deoptless_call(self, state, function, this_value, args, use_queue):
        """Spec-table miss on the call path: grow, dispatch, or widen.

        Policy, in order: an argument-set key arriving for the second
        time marks a *recurring* precondition regime and earns its own
        specialized table line while the table has room (the "multiple
        compiled versions keyed by guard preconditions" of
        docs/DEOPTLESS.md); otherwise dispatch into the generalized
        catch-all when it exists; otherwise count a table miss and, at
        the engine's threshold, compile the generalized sibling.
        Returns True when ``state.native`` now accepts this call (the
        caller runs it natively); False to interpret this call.
        """
        if self._deoptless_promote(
            state, function, this_value, args, _spec_key(this_value, args), use_queue
        ):
            return True
        if state.generalized is not None:
            self._dispatch_into(state, state.generalized, "call", None)
            return True
        self._deoptless_miss(state, "new-args")
        if state.deoptless_misses < self.deoptless_miss_threshold:
            return False
        if use_queue:
            # Siblings compile on the background lane when one is
            # available: keep interpreting, install at a poll point.
            self._enqueue_compile(state, function, this_value, args, generalized=True)
            return False
        if self._generalize(state, function, this_value, args, osr_frame=None) is None:
            return False
        self._dispatch_into(state, state.generalized, "call", None)
        return True

    def _deoptless_osr(self, state, frame, target_pc):
        """OSR-precondition miss: dispatch into the generalized sibling.

        Returns True when ``state.native`` can now be OSR-entered at
        ``target_pc`` (the caller emits ``osr.enter`` and runs it);
        False to keep interpreting this iteration.
        """
        generalized = state.generalized_osr
        if (
            generalized is not None
            and generalized.osr_index is not None
            and generalized.meta.get("osr_pc") == target_pc
        ):
            self._dispatch_into(state, generalized, "osr", target_pc)
            return True
        if generalized is None and state.generalized is None:
            self._deoptless_miss(state, "osr-state-mismatch")
            if state.deoptless_misses < self.deoptless_miss_threshold:
                return False
        generalized = self._generalize(
            state,
            frame.function,
            frame.this_value,
            frame.args,
            osr_frame=(target_pc, frame),
        )
        if generalized is None:
            return False
        self._dispatch_into(state, generalized, "osr", target_pc)
        return True

    # -- compilation -------------------------------------------------------------------------

    def _produce(self, state, function, this_value, args, osr_frame, hidden=False, generalized=False):
        """Run one compilation and account it; no installation.

        Emits ``compile.start``/``compile.finish`` (or ``reject``),
        charges the compile cycles to the stalled or hidden lane, and
        returns ``(result, compile_cycles)`` — or None when the JIT
        refuses the function.  Consulting the persistent code cache
        happens here: a disk hit replays the stored artifact instead of
        running MIR→LIR→codegen, with identical cycle accounting.
        ``generalized`` compiles the deoptless sibling: parameter
        values unbaked and shape guards widened away, but type
        speculation kept and no §4 policy bit on the function flipped
        (docs/DEOPTLESS.md).
        """
        code = state.code
        tracer = self.tracer
        generic = state.force_generic
        shape_guards = not generalized
        specialize = (
            self.config.param_spec
            and not state.never_specialize
            and not generic
            and not generalized
        )
        osr_pc = None
        osr_args = None
        osr_locals = None
        if osr_frame is not None:
            osr_pc, frame = osr_frame
            osr_args = list(frame.args)
            osr_locals = list(frame.locals)
        if tracer is not None:
            tracer.emit(
                "compile",
                "start",
                fn=code.name,
                code_id=code.code_id,
                reason="osr" if osr_frame is not None else "call",
                attempt_specialize=specialize,
                generic=generic,
            )
        result = None
        cache = self.code_cache
        cache_key = None
        if cache is not None:
            cache_key = cache.key_for(
                code,
                self.config,
                feedback=code.feedback,
                param_values=list(args) if specialize else None,
                this_value=this_value if specialize else None,
                osr_pc=osr_pc,
                osr_args=osr_args,
                osr_locals=osr_locals,
                generic=generic,
                shape_guards=shape_guards,
            )
            if cache_key is not None:
                result = cache.load(cache_key, code)
                if result is not None and tracer is not None:
                    tracer.emit(
                        "cache",
                        "disk_hit",
                        fn=code.name,
                        code_id=code.code_id,
                        key=cache_key,
                    )
        if result is None:
            try:
                result = compile_function(
                    code,
                    self.config,
                    feedback=code.feedback,
                    param_values=list(args) if specialize else None,
                    this_value=this_value if specialize else None,
                    osr_pc=osr_pc,
                    osr_args=osr_args,
                    osr_locals=osr_locals,
                    generic=generic,
                    shape_guards=shape_guards,
                    tracer=tracer,
                )
            except NotCompilable:
                state.not_compilable = True
                self.stats.not_compilable.add(code.code_id)
                if tracer is not None:
                    tracer.emit("compile", "reject", fn=code.name, code_id=code.code_id)
                return None
            if cache_key is not None:
                cache.store(cache_key, result, executor=self.executor)
        compile_cycles = self.stats.record_compile(
            code,
            result.native,
            result.work.total_units,
            result.codegen_stats,
            osr_pc is not None,
            hidden=hidden,
        )
        if self.cycle_profiler is not None:
            self.cycle_profiler.record_compile(
                code, result.native, compile_cycles, hidden=hidden
            )
        if self.metrics is not None:
            self.metrics.observe("repro_compile_cycles_per_compile", compile_cycles)
        if tracer is not None:
            tracer.emit(
                "compile",
                "finish",
                fn=code.name,
                code_id=code.code_id,
                specialized=result.native.meta["specialized"],
                osr=osr_pc is not None,
                mir_instructions=result.mir_instructions,
                lir_instructions=result.codegen_stats["lir_instructions"],
                native_size=result.native.size,
                intervals=result.codegen_stats["intervals"],
                spills=result.codegen_stats["spills"],
                cycles=compile_cycles,
            )
        return result, compile_cycles

    def _compile(self, state, function, this_value, args, osr_frame):
        code = state.code
        tracer = self.tracer
        produced = self._produce(state, function, this_value, args, osr_frame)
        if produced is None:
            return False
        result, _ = produced
        osr_pc = None
        osr_args = None
        osr_locals = None
        if osr_frame is not None:
            osr_pc, frame = osr_frame
            osr_args = list(frame.args)
            osr_locals = list(frame.locals)
        state.native = result.native
        if result.native.meta["specialized"]:
            self.stats.specialized_functions.add(code.code_id)
            state.spec_key = _spec_key(this_value, args)
            state.osr_state_key = (
                _osr_key(osr_args, osr_locals) if osr_pc is not None else None
            )
            state.spec_cache[state.spec_key] = (state.native, state.osr_state_key)
            if self.metrics is not None:
                self.metrics.inc("repro_spec_cache_stores_total")
            if tracer is not None:
                tracer.emit(
                    "specialize",
                    "specialized",
                    fn=code.name,
                    code_id=code.code_id,
                    key=repr(state.spec_key),
                    args=list(args),
                    osr=osr_pc is not None,
                )
                tracer.emit(
                    "cache",
                    "store",
                    fn=code.name,
                    code_id=code.code_id,
                    key=repr(state.spec_key),
                    entries=len(state.spec_cache),
                )
        else:
            state.spec_key = None
            state.osr_state_key = None
            if tracer is not None and self.config.param_spec:
                tracer.emit(
                    "specialize",
                    "generic",
                    fn=code.name,
                    code_id=code.code_id,
                    never_specialize=state.never_specialize,
                    force_generic=state.force_generic,
                )
        return True

    # -- background lane (docs/COMPILE_PIPELINE.md) -----------------------------------------

    def _enqueue_compile(self, state, function, this_value, args, generalized=False):
        """Hand a call-path compile to the background lane.

        The compilation itself runs now (its inputs — bytecode,
        feedback, argument values — are snapshotted at enqueue, as a
        real engine does before dispatching to a helper thread) but is
        charged to the lane's clock as hidden cycles; the binary only
        becomes visible at ``ready_at`` on the main-lane clock.  At
        most one job per function is in flight.  ``generalized`` jobs
        carry the deoptless sibling compile (docs/DEOPTLESS.md).
        """
        queue = self.compile_queue
        code = state.code
        if code.code_id in queue.pending:
            return
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "compile",
                "enqueue",
                fn=code.name,
                code_id=code.code_id,
                reason="generalize" if generalized else "call",
            )
        produced = self._produce(
            state,
            function,
            this_value,
            args,
            osr_frame=None,
            hidden=True,
            generalized=generalized,
        )
        if produced is None:
            return
        result, compile_cycles = produced
        job = CompileJob(state, function, this_value, args, result, compile_cycles)
        job.generalized = generalized
        if result.native.meta["specialized"]:
            job.spec_key = _spec_key(this_value, args)
        queue.schedule(code.code_id, job, self.trace_clock())
        if tracer is not None:
            tracer.emit(
                "compile",
                "queue_depth",
                fn=code.name,
                code_id=code.code_id,
                action="enqueue",
                depth=len(queue.pending),
            )

    def _install_ready(self, queue):
        """Install every finished background binary at this poll point."""
        now = self.trace_clock()
        for job in queue.take_ready(now):
            self._install_job(queue, job, now)

    def _install_job(self, queue, job, now):
        """Make one background binary active, or drop it if stale.

        A job is stale when the function's policy state moved on while
        it sat on the lane: the function deoptimized (specialized code
        is no longer allowed), a synchronous OSR compile already
        produced a more capable binary, or another route installed a
        binary for the same argument set.
        """
        state = job.state
        code = state.code
        native = job.result.native
        specialized = native.meta["specialized"]
        tracer = self.tracer
        stale = (
            state.not_compilable
            or (specialized and (state.never_specialize or state.force_generic))
            or (state.native is not None and state.native.osr_index is not None)
            or (job.spec_key is not None and job.spec_key in state.spec_cache)
            or (job.generalized and state.generalized is not None)
        )
        if stale:
            queue.dropped += 1
            if tracer is not None:
                tracer.emit(
                    "compile",
                    "queue_depth",
                    fn=code.name,
                    code_id=code.code_id,
                    action="drop",
                    depth=len(queue.pending),
                )
            return
        queue.installed += 1
        state.native = native
        # Fresh binary, fresh loop-hotness clock: backedges taken while
        # the job was in flight should not instantly trigger an OSR
        # recompile of the binary that just landed.
        state.backedge_count = 0
        self.stats.background_installs += 1
        if job.generalized:
            # The deoptless sibling lands: record it in the dispatch
            # table — calls from here on enter it natively.
            state.generalized = native
            self.stats.deoptless_generalized_compiles += 1
            if self.metrics is not None:
                self.metrics.inc("repro_deoptless_generalized_compiles_total")
            if tracer is not None:
                tracer.emit(
                    "deoptless",
                    "generalize",
                    fn=code.name,
                    code_id=code.code_id,
                    osr=False,
                    osr_pc=None,
                    misses=state.deoptless_misses,
                )
        if self.metrics is not None:
            self.metrics.observe(
                "repro_compile_install_latency_cycles", now - job.enqueue_cycle
            )
        if tracer is not None:
            tracer.emit(
                "compile",
                "install",
                fn=code.name,
                code_id=code.code_id,
                ready_at=job.ready_at,
                waited_cycles=now - job.ready_at,
                specialized=specialized,
            )
            tracer.emit(
                "compile",
                "queue_depth",
                fn=code.name,
                code_id=code.code_id,
                action="install",
                depth=len(queue.pending),
            )
        if specialized:
            self.stats.specialized_functions.add(code.code_id)
            state.spec_key = job.spec_key
            state.osr_state_key = None
            state.spec_cache[state.spec_key] = (native, None)
            if self.metrics is not None:
                self.metrics.inc("repro_spec_cache_stores_total")
            if tracer is not None:
                tracer.emit(
                    "specialize",
                    "specialized",
                    fn=code.name,
                    code_id=code.code_id,
                    key=repr(state.spec_key),
                    args=list(job.args),
                    osr=False,
                )
                tracer.emit(
                    "cache",
                    "store",
                    fn=code.name,
                    code_id=code.code_id,
                    key=repr(state.spec_key),
                    entries=len(state.spec_cache),
                )
        else:
            state.spec_key = None
            state.osr_state_key = None
            if tracer is not None and self.config.param_spec:
                tracer.emit(
                    "specialize",
                    "generic",
                    fn=code.name,
                    code_id=code.code_id,
                    never_specialize=state.never_specialize,
                    force_generic=state.force_generic,
                )

    def _discard_specialized(self, state, reason):
        if self.compile_queue is not None:
            # Any in-flight job for this function compiled against a
            # policy state that no longer exists; the lane's cycles
            # are spent either way (wasted speculative work).
            if self.compile_queue.cancel(state.code.code_id):
                if self.tracer is not None:
                    self.tracer.emit(
                        "compile",
                        "queue_depth",
                        fn=state.code.name,
                        code_id=state.code.code_id,
                        action="drop",
                        depth=len(self.compile_queue.pending),
                    )
        if self.tracer is not None:
            self.tracer.emit(
                "deopt",
                "discard",
                fn=state.code.name,
                code_id=state.code.code_id,
                reason=reason,
                dropped=len(state.spec_cache),
            )
        state.native = None
        state.spec_key = None
        state.osr_state_key = None
        state.spec_cache.clear()
        state.never_specialize = True
        self.stats.deoptimized_functions.add(state.code.code_id)
        self.stats.record_invalidation()
        if self.cycle_profiler is not None:
            self.cycle_profiler.record_invalidation(
                state.code, self.cost_model.invalidation
            )

    # -- native execution -----------------------------------------------------------------------

    def _run_call(self, state, function, this_value, args):
        """Run the cached binary from its function entry point."""
        interpreter = self.interpreter
        interpreter.call_depth += 1
        self.executor.cycles += self.cost_model.native_call_entry
        if self.cycle_profiler is not None:
            self.cycle_profiler.charge_entry(
                state.native, self.cost_model.native_call_entry
            )
        try:
            return self.executor.run(state.native, function, this_value, args)
        except Bailout as bail:
            return self._handle_call_bailout(state, function, this_value, args, bail)
        finally:
            interpreter.call_depth -= 1

    def _handle_call_bailout(self, state, function, this_value, args, bail):
        self._note_bailout(state, bail, this_value)
        if (
            self.deoptless
            and state.generalized is None
            and state.backedge_count == 0
            and state.deoptless_misses >= self.deoptless_miss_threshold
            and not state.not_compilable
        ):
            # A loop-free function churning on shape guards has no back
            # edge to dispatch at, so widen now: the *next* call enters
            # the generalized sibling natively (this one resumes in the
            # interpreter — its frame is mid-expression, not at an OSR
            # point).
            if self._generalize(state, function, this_value, args, osr_frame=None) is not None:
                state.native = state.generalized
                state.spec_key = None
                state.osr_state_key = None
        frame = Frame(state.code, function, this_value, list(bail.frame_args))
        frame.locals[:] = bail.frame_locals
        pc = bail.pc + 1 if bail.mode == "after" else bail.pc
        return self.interpreter.execute(frame, pc, list(bail.frame_stack))

    def _run_osr(self, state, frame, target_pc):
        """Enter the cached binary at its OSR entry for ``frame``."""
        interpreter = self.interpreter
        self.executor.cycles += self.cost_model.native_call_entry
        if self.cycle_profiler is not None:
            self.cycle_profiler.charge_entry(
                state.native, self.cost_model.native_call_entry
            )
        try:
            value = self.executor.run(
                state.native,
                frame.function,
                frame.this_value,
                frame.args,
                entry="osr",
                osr_args=list(frame.args),
                osr_locals=list(frame.locals),
            )
            return ("return", value)
        except Bailout as bail:
            self._note_bailout(state, bail, frame.this_value)
            frame.args[:] = bail.frame_args
            frame.locals[:] = bail.frame_locals
            pc = bail.pc + 1 if bail.mode == "after" else bail.pc
            return ("resume", (pc, list(bail.frame_stack)))

    def _retrain_noop(self, state, bail):
        """Whether a shape-retrain recompile would be bit-identical.

        True when recording the failing shape would not change the IC
        (it is already cached at the site, or the site is megamorphic)
        *and* the live IC still matches the fingerprint the binary was
        compiled from — the recompile would reproduce the same content
        key, so the discard is skipped (``retrain_noops`` in
        docs/STATS.md).
        """
        feedback = state.code.feedback
        if feedback is None or bail.actual is None:
            return False
        if feedback.shape_record_would_change(bail.pc, bail.actual):
            return False
        fingerprint = state.native.meta.get("ic_fingerprint")
        return fingerprint is not None and fingerprint == repr(
            shape_ic_fingerprint(feedback.shape_ics)
        )

    def _note_bailout(self, state, bail, this_value):
        """Account a bailout and feed the observation back into typing."""
        self.stats.record_bailout()
        if self.cycle_profiler is not None:
            self.cycle_profiler.record_bailout(
                state.code, state.native, bail, self.cost_model.bailout
            )
        state.bailout_count += 1
        if bail.guard_op == "guardshape":
            # A receiver reached a shape-guarded property site with a
            # shape the inline cache had not seen at compile time.  The
            # "at"-mode resume re-executes the property bytecode, whose
            # handler records the new shape into the IC, so the next
            # compile covers it.
            self.stats.shape_guard_bailouts += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "bailout",
                "guard",
                fn=state.code.name,
                code_id=state.code.code_id,
                count=state.bailout_count,
                **describe_bailout(bail)
            )
            if bail.guard_op == "guardshape" and tracer.wants("shape"):
                tracer.emit(
                    "shape",
                    "guard",
                    fn=state.code.name,
                    code_id=state.code.code_id,
                    reason=bail.reason,
                    resume_pc=bail.pc,
                    native_index=bail.native_index,
                    count=self.stats.shape_guard_bailouts,
                )
            if bail.reason == FAULT_INJECTED:
                tracer.emit(
                    "fuzz",
                    "inject",
                    fn=state.code.name,
                    code_id=state.code.code_id,
                    native_index=bail.native_index,
                    guard_op=bail.guard_op,
                )
        if (
            bail.guard_op == "guardshape"
            and bail.reason != FAULT_INJECTED
            and state.native is not None
        ):
            if self.deoptless:
                # Deoptless: keep the binary and its table entry — the
                # resumed interpreter records the new shape into the
                # site's IC, and the dispatch table recovers at the
                # next back edge or call (docs/DEOPTLESS.md).
                self._deoptless_miss(state, "shape-guard")
            elif self._retrain_noop(state, bail):
                # Recording this shape would not change the IC, and
                # the live IC still matches the fingerprint the binary
                # was compiled from: a retrain recompile would land on
                # the same content key.  Keep the binary.
                self.stats.retrain_noops += 1
                if self.metrics is not None:
                    self.metrics.inc("repro_engine_retrain_noops_total")
                if tracer is not None:
                    tracer.emit(
                        "deopt",
                        "retrain_noop",
                        fn=state.code.name,
                        code_id=state.code.code_id,
                        resume_pc=bail.pc,
                        shape=bail.actual,
                    )
            else:
                # Retrain rather than re-bail: the resumed interpreter is
                # about to record the unexpected shape into the site's IC,
                # which makes the installed binary's baked-in guard set
                # permanently stale — every future call with this receiver
                # would bail again.  Drop the binary; the next hot call
                # recompiles against the enriched cache (a wider poly
                # guard, or guard-free once the site goes megamorphic).
                # Injector-forced failures skip this: the speculation they
                # fail actually holds, so the binary is still right.
                if state.spec_key is not None:
                    state.spec_cache.pop(state.spec_key, None)
                state.native = None
                state.spec_key = None
                state.osr_state_key = None
                if self.metrics is not None:
                    self.metrics.inc("repro_engine_retrains_total")
                self.stats.record_invalidation()
                if self.cycle_profiler is not None:
                    self.cycle_profiler.record_invalidation(
                        state.code, self.cost_model.invalidation
                    )
                if tracer is not None:
                    tracer.emit(
                        "deopt",
                        "discard",
                        fn=state.code.name,
                        code_id=state.code.code_id,
                        reason="shape-retrain",
                        dropped=1,
                    )
        feedback = state.code.feedback
        if feedback is not None:
            if bail.mode == "after":
                feedback.record_site(bail.pc, bail.actual)
            elif bail.pc == 0:
                feedback.record_args(bail.frame_args, this_value)
        if state.bailout_count > self.bailout_limit and state.native is not None:
            # Too speculative for this function: drop to generic code.
            # The generalized sibling is stale too — it kept type
            # speculation, which is exactly what is now suspect — so the
            # dispatch table must re-generalize under force_generic.
            state.native = None
            state.generalized = None
            state.generalized_osr = None
            state.force_generic = True
            self.stats.record_invalidation()
            if self.cycle_profiler is not None:
                self.cycle_profiler.record_invalidation(
                    state.code, self.cost_model.invalidation
                )
            if tracer is not None:
                tracer.emit(
                    "deopt",
                    "force_generic",
                    fn=state.code.name,
                    code_id=state.code.code_id,
                    bailouts=state.bailout_count,
                )


def run_program(source, config=BASELINE, cost_model=None, profiler=None, engine_kwargs=None):
    """Convenience: run ``source`` under a fresh engine.

    Returns ``(engine, printed_output)``.
    """
    engine = Engine(
        config=config,
        cost_model=cost_model,
        profiler=profiler,
        **(engine_kwargs or {})
    )
    printed = engine.run_source(source)
    return engine, printed
