"""Exception hierarchy shared across the whole VM and JIT."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class JSSyntaxError(ReproError):
    """Raised by the lexer or parser on malformed source code."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "%s (line %d, column %d)" % (message, line, column or 0)
        super().__init__(message)


class JSTypeError(ReproError):
    """Raised at runtime when a value is used against its type contract."""


class JSReferenceError(ReproError):
    """Raised at runtime when an undeclared variable is referenced."""


class JSRangeError(ReproError):
    """Raised at runtime for invalid numeric ranges (e.g. bad array length)."""


class CompilerError(ReproError):
    """Internal error in the bytecode compiler or the JIT pipeline.

    A ``CompilerError`` always indicates a bug in this package, never in
    the guest program.
    """


class NotCompilable(ReproError):
    """The JIT cannot compile this function; it must stay interpreted.

    This is a *policy* signal, not a bug: e.g. functions that close over
    enclosing locals are interpreter-only in this reproduction (see
    DESIGN.md, "Honest limits").
    """
