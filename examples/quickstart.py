"""Quickstart: run a guest program under the specializing JIT.

This is the smallest end-to-end tour of the public API:

1. build an :class:`~repro.Engine` with an optimization configuration,
2. run JavaScript-subset source through it,
3. read the engine's statistics — the same counters every paper
   experiment is built from.

Run it with::

    python examples/quickstart.py
"""

from repro import BASELINE, FULL_SPEC, Engine

# The paper's flagship micro-benchmark: count the bits in a byte.  The
# kernel is hot, and the driver always passes the same closure, so
# parameter specialization inlines it without any guards (§3.7).
PROGRAM = """
function bitsinbyte(b) {
    var m = 1, c = 0;
    while (m < 0x100) {
        if (b & m) c++;
        m <<= 1;
    }
    return c;
}

function TimeFunc(func) {
    var sum = 0;
    for (var x = 0; x < 35; x++)
        for (var y = 0; y < 256; y++)
            sum += func(y);
    return sum;
}

print("total bits:", TimeFunc(bitsinbyte));
"""


def run(config):
    engine = Engine(config=config)
    output = engine.run_source(PROGRAM)
    return engine, output


def main():
    baseline_engine, baseline_output = run(BASELINE)
    spec_engine, spec_output = run(FULL_SPEC)

    assert baseline_output == spec_output, "optimizations must not change results"
    print("guest output:        %s" % baseline_output[0])

    base = baseline_engine.stats.total_cycles
    spec = spec_engine.stats.total_cycles
    print("baseline runtime:    %d cycles" % base)
    print("specialized runtime: %d cycles" % spec)
    print("speedup:             %.2f%%" % (100.0 * (base - spec) / base))

    print("\nspecialization policy (paper, Section 4):")
    summary = spec_engine.stats.summary()
    print("  functions specialized:  %d" % summary["specialized"])
    print("  successful (kept):      %d" % summary["successful"])
    print("  deoptimized (discarded): %d" % summary["deoptimized"])
    print("  bailouts:               %d" % summary["bailouts"])
    print("  recompilations:         %d" % summary["recompilations"])


if __name__ == "__main__":
    main()
