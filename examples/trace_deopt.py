"""Watch the deopt life cycle through the JIT event tracer.

Runs the same specialize → reuse → discard → recompile → bailout
story as ``deopt_lifecycle.py``, but instead of poking engine
internals it subscribes a :class:`repro.telemetry.tracing.Tracer` to
the ``compile``/``specialize``/``cache``/``deopt``/``bailout``
channels and lets the event stream tell the story (the schema is
documented in docs/TRACING.md).

Run it with::

    python examples/trace_deopt.py
"""

from repro import FULL_SPEC, Engine
from repro.jsvm.values import UNDEFINED
from repro.telemetry.tracing import Tracer, format_timeline, to_chrome_trace


def main():
    tracer = Tracer(
        channels=["compile", "specialize", "cache", "deopt", "bailout", "osr"]
    )
    engine = Engine(config=FULL_SPEC, hot_call_threshold=5, tracer=tracer)
    interpreter = engine.interpreter

    from repro.jsvm.bytecompiler import compile_source

    code = compile_source("function scale(v, k) { return v * k + 1; }")
    interpreter.run_code(code)
    scale = interpreter.runtime.get_global("scale")

    # 1. warm-up + hot compile, specialized on (7, 3).
    for _ in range(6):
        interpreter.call_function(scale, UNDEFINED, [7, 3])
    # 2. same arguments: cache hits, no recompilation.
    for _ in range(3):
        interpreter.call_function(scale, UNDEFINED, [7, 3])
    # 3. different arguments: discard + generic recompile + mark.
    interpreter.call_function(scale, UNDEFINED, [10, 10])
    # 4. a type guard fails inside the generic-typed code: bailout.
    interpreter.call_function(scale, UNDEFINED, ["oops", 3])
    engine.finish()

    print("-- per-function timeline " + "-" * 40)
    print(format_timeline(tracer.events))

    print()
    print("-- the story the events tell " + "-" * 36)
    for event in tracer.events:
        label = "%s.%s" % (event["ch"], event["event"])
        if label == "specialize.specialized":
            print("specialized on args=%s (key cached)" % (event["args"],))
        elif label == "cache.hit":
            print("cache hit: same arguments reuse the binary")
        elif label == "cache.miss":
            print("cache miss: a second distinct argument set")
        elif label == "deopt.discard":
            print("deopt: binary discarded (%s), never-specialize mark set" % event["reason"])
        elif label == "specialize.generic":
            print("recompiled generically (never_specialize=%s)" % event["never_specialize"])
        elif label == "bailout.guard":
            print(
                "bailout: %s failed %s at native[%s], resume pc %s (resume point %s)"
                % (
                    event["guard_op"],
                    event["reason"],
                    event["native_index"],
                    event["resume_pc"],
                    event["resume_point"],
                )
            )

    chrome = to_chrome_trace(tracer.events)
    print()
    print(
        "Chrome trace: %d entries (write with --chrome via `python -m repro trace`)"
        % len(chrome["traceEvents"])
    )


if __name__ == "__main__":
    main()
