"""The life cycle of a specialized binary: hit, reuse, discard, fall back.

Walks the paper's Section 4 specialization policy step by step with a
live engine, printing what the cache does at every stage:

1. a function becomes hot and is compiled specialized on its actual
   arguments;
2. further calls with the same arguments reuse the cached binary;
3. a call with different arguments discards it, recompiles the
   function "in IonMonkey's traditional mode", and marks it so it is
   never specialized again;
4. a type-guard bailout shows the other recovery path: rebuild the
   interpreter frame from the guard's snapshot and resume in bytecode.

Run it with::

    python examples/deopt_lifecycle.py
"""

from repro import FULL_SPEC, Engine
from repro.jsvm.values import UNDEFINED


def stage(title):
    print("\n--- %s " % title + "-" * max(0, 60 - len(title)))


def main():
    engine = Engine(config=FULL_SPEC, hot_call_threshold=5)
    interpreter = engine.interpreter

    # Define a function by running its definition.
    from repro.jsvm.bytecompiler import compile_source

    code = compile_source("function scale(v, k) { return v * k + 1; }")
    interpreter.run_code(code)
    scale = interpreter.runtime.get_global("scale")

    stage("1. warm-up: interpreted calls with the same arguments")
    for i in range(5):
        result = interpreter.call_function(scale, UNDEFINED, [7, 3])
    state = engine._state(scale.code)
    print("calls: %d, compiled: %s" % (state.call_count, state.native is not None))

    stage("2. hot: compiled, specialized on (7, 3)")
    result = interpreter.call_function(scale, UNDEFINED, [7, 3])
    state = engine._state(scale.code)
    print("result: %s" % result)
    print("native code: %s" % state.native)
    print("specialized: %s" % state.native.meta["specialized"])
    print("baked-in arguments: %s" % (state.native.meta["specialized_args"],))
    print("code size: %d instructions" % state.native.size)

    stage("3. cache hits: same arguments reuse the binary")
    compiles_before = engine.stats.compiles
    for i in range(1000):
        interpreter.call_function(scale, UNDEFINED, [7, 3])
    print("1000 calls, new compilations: %d" % (engine.stats.compiles - compiles_before))

    stage("4. different arguments: discard + generic recompile + mark")
    result = interpreter.call_function(scale, UNDEFINED, [10, 10])
    state = engine._state(scale.code)
    print("result: %s" % result)
    print("specialized now: %s" % state.native.meta["specialized"])
    print("never-specialize mark: %s" % state.never_specialize)
    print("deoptimized functions: %d" % len(engine.stats.deoptimized_functions))
    print("generic code size: %d instructions (specialized was smaller)" % state.native.size)

    stage("5. bailout: a type guard fails inside generic-typed code")
    bailouts_before = engine.stats.bailouts
    result = interpreter.call_function(scale, UNDEFINED, ["oops", 3])
    print("result: %s (computed correctly by the interpreter after the bailout)" % result)
    print("bailouts taken: %d" % (engine.stats.bailouts - bailouts_before))

    stage("summary")
    engine.finish()
    for key, value in sorted(engine.stats.summary().items()):
        print("  %-16s %s" % (key, value))


if __name__ == "__main__":
    main()
