"""Regenerate the paper's Section 2 study: why specialize on values?

Prints the Figure 1/2 histograms from the synthetic Alexa-top-100
corpus, the Figure 3 histograms measured live on the benchmark suites,
and the Figure 4 parameter-type comparison — the empirical case for
parameter-based value specialization.

Run it with::

    python examples/web_profile.py
"""

from repro.bench.figures import parameter_types, suite_histograms, web_histograms
from repro.telemetry.histograms import FIGURE4_CATEGORIES
from repro.workloads import ALL_SUITES
from repro.workloads.web import WebCorpusConfig


def print_histogram(title, histogram, total, limit=15):
    print("\n%s" % title)
    for value in range(1, limit + 1):
        fraction = histogram.get(value, 0) / total
        bar = "#" * int(round(fraction * 60))
        print("  %3d | %-60s %5.2f%%" % (value, bar, 100 * fraction))
    tail = sum(count for value, count in histogram.items() if value > limit)
    print("  >%2d | %5.2f%% (tail, max observed: %d)" % (
        limit, 100 * tail / total, max(histogram)))


def main():
    print("Section 2 of the paper: a case for value specialization")

    profiler = web_histograms(WebCorpusConfig(num_functions=2300))
    total = float(profiler.num_functions)
    print("\nSynthetic Alexa-top-100 corpus: %d functions" % profiler.num_functions)
    print_histogram(
        "Figure 1 - functions called n times", profiler.call_count_histogram(), total
    )
    print_histogram(
        "Figure 2 - functions with n distinct argument sets",
        profiler.argument_set_histogram(),
        total,
    )
    print(
        "\n  called once:          %5.2f%%  (paper: 48.88%%)"
        % (100 * profiler.fraction_called_once())
    )
    print(
        "  single argument set:  %5.2f%%  (paper: 59.91%%)"
        % (100 * profiler.fraction_single_argument_set())
    )

    print("\nFigure 3 - live measurements of the benchmark suites:")
    suite_profilers = {}
    for name, suite in ALL_SUITES.items():
        suite_profilers[name] = suite_histograms(suite)
        p = suite_profilers[name]
        print(
            "  %-10s %4d functions, called-once %5.2f%%, single-args %5.2f%%"
            % (
                name,
                p.num_functions,
                100 * p.fraction_called_once(),
                100 * p.fraction_single_argument_set(),
            )
        )

    print("\nFigure 4 - parameter types of single-argument-set functions:")
    print("  %-10s" % "population" + "".join("%11s" % c for c in FIGURE4_CATEGORIES))
    rows = {"WEB": parameter_types(profiler)}
    for name, p in suite_profilers.items():
        rows[name] = parameter_types(p)
    for name, dist in rows.items():
        print("  %-10s" % name + "".join("%10.1f%%" % (100 * dist[c]) for c in FIGURE4_CATEGORIES))

    print(
        "\nTakeaway (paper, Section 2): most functions on the web always "
        "receive the same arguments,\nso code specialized on those values "
        "is reusable about 60% of the time."
    )


if __name__ == "__main__":
    main()
