"""The paper's Section 6 future work, implemented: three extensions.

The paper closes with three research directions; this example runs all
three against the same engine and prints what each one buys:

1. **Overflow-check elimination** (after Sol et al.) — range analysis
   on specialized loop bounds clears the overflow guards on int32
   arithmetic.
2. **Loop unrolling under value specialization** — constant trip
   counts (which specialization creates) let short loops unroll fully,
   after which constant propagation often deletes them.
3. **Specialization-cache capacity** — the paper caches one binary per
   function and asks whether more would pay; a capacity-2 cache keeps
   a function with two alternating argument sets specialized forever.

Run it with::

    python examples/future_work.py
"""

from repro import FULL_SPEC, Engine
from repro.engine.config import EXTENDED, OptConfig

OVERFLOW_KERNEL = """
function kernel(n) {
  var s = 0;
  for (var i = 0; i < n; i++) s = (s & 8191) + i;
  return s;
}
var t = 0;
for (var r = 0; r < 120; r++) t += kernel(400);
print(t);
"""

UNROLL_KERNEL = """
function dot4(a) {
  var s = 0;
  for (var i = 0; i < 4; i++) s = s + a * i;
  return s;
}
var acc = 0;
for (var r = 0; r < 2500; r++) acc = (acc + dot4(3)) & 0xffff;
print(acc);
"""

ALTERNATING = """
function f(a, b) { return (a * b) & 1023; }
var s = 0;
for (var i = 0; i < 3000; i++) s += i % 2 ? f(12, 34) : f(56, 78);
print(s);
"""


def measure(source, config, **engine_kwargs):
    engine = Engine(config=config, **engine_kwargs)
    output = engine.run_source(source)
    return output, engine.stats


def compare(title, source, config_a, config_b, label_a, label_b, **kwargs):
    out_a, stats_a = measure(source, config_a, **kwargs)
    out_b, stats_b = measure(source, config_b, **kwargs)
    assert out_a == out_b
    gain = 100.0 * (stats_a.total_cycles - stats_b.total_cycles) / stats_a.total_cycles
    print("\n%s" % title)
    print("  output: %s" % out_a[0])
    print("  %-22s %12d cycles" % (label_a, stats_a.total_cycles))
    print("  %-22s %12d cycles  (%+.2f%%)" % (label_b, stats_b.total_cycles, gain))
    return stats_a, stats_b


def main():
    no_osr = dict(hot_call_threshold=5, osr_backedge_threshold=10 ** 9)

    overflow_config = OptConfig(
        "all+ovf", param_spec=True, constprop=True, loop_inversion=True,
        dce=True, bounds_check=True, overflow_elim=True,
    )
    compare(
        "1. Overflow-check elimination (Sol et al., via range analysis):",
        OVERFLOW_KERNEL, FULL_SPEC, overflow_config,
        "paper's five passes", "+ overflow elimination", **no_osr
    )

    unroll_config = OptConfig(
        "all+unroll", param_spec=True, constprop=True, loop_inversion=True,
        dce=True, bounds_check=True, unroll=True,
    )
    compare(
        "2. Loop unrolling under value specialization:",
        UNROLL_KERNEL, FULL_SPEC, unroll_config,
        "paper's five passes", "+ full unrolling", **no_osr
    )

    print("\n3. Specialization-cache capacity (paper: one binary per function):")
    for capacity in (1, 2):
        output, stats = measure(
            ALTERNATING, FULL_SPEC, spec_cache_capacity=capacity, hot_call_threshold=5
        )
        print(
            "  capacity %d: %12d cycles, %d deoptimized, %d compiles"
            % (
                capacity,
                stats.total_cycles,
                len(stats.deoptimized_functions),
                stats.compiles,
            )
        )
    print(
        "  (with room for both argument sets, the function never deoptimizes\n"
        "   and both call sites keep running specialized code)"
    )

    print("\nEverything combined is the EXTENDED config:", EXTENDED.describe())


if __name__ == "__main__":
    main()
