"""A tour of the compiler internals, following the paper's Figures 6-8.

This example compiles the paper's running example — ``map`` applying
``inc`` over an array — by hand, pass by pass, printing the MIR after
each stage so you can watch:

* parameter specialization replace parameter nodes with constants
  (Figure 7a),
* constant propagation fold type guards and arithmetic (Figure 7b),
* dead-code elimination delete the constant branches (Figure 8a),
* bounds-check elimination remove the array guards (Figure 8b),
* inlining splice ``inc``'s body into the loop (Figure 8c).

Run it with::

    python examples/specialization_tour.py
"""

from repro.engine.config import FULL_SPEC
from repro.jsvm.bytecompiler import compile_source
from repro.jsvm.feedback import TypeFeedback
from repro.jsvm.interpreter import Interpreter
from repro.jsvm.objects import JSArray
from repro.jsvm.values import JSFunction
from repro.lir.native import generate_native
from repro.mir.builder import build_mir
from repro.mir.printer import format_graph
from repro.mir.specializer import specialize_types
from repro.opts.bounds_check import run_bounds_check_elimination
from repro.opts.constprop import run_constant_propagation
from repro.opts.dce import run_dce
from repro.opts.gvn import run_gvn
from repro.opts.inlining import run_inlining

SOURCE = """
function inc(x) { return x + 1; }
function map(s, b, n, f) {
  var i = b;
  while (i < n) { s[i] = f(s[i]); i++; }
  return s;
}
map([1, 2, 3, 4, 5], 2, 5, inc);
"""


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    # Compile and warm up in the interpreter so type feedback exists,
    # exactly as the engine would before a function gets hot.
    toplevel = compile_source(SOURCE)
    functions = {}

    def collect(code):
        for constant in code.constants:
            if hasattr(constant, "instructions"):
                functions[constant.name] = constant
                collect(constant)

    collect(toplevel)
    map_code = functions["map"]
    inc_code = functions["inc"]
    for code in (map_code, inc_code):
        code.feedback = TypeFeedback(code.num_params)

    interpreter = Interpreter()
    original = interpreter.call_function

    def recording(function, this_value, args):
        if function.code.feedback is not None:
            function.code.feedback.record_args(args, this_value)
        return original(function, this_value, args)

    interpreter.call_function = recording
    interpreter.run_code(toplevel)

    # The actual runtime arguments we specialize on (what the engine
    # reads off the interpreter stack at the hot call).
    array = JSArray([1, 2, 3, 4, 5])
    inc_function = JSFunction(inc_code, ())
    arguments = [array, 2, 5, inc_function]

    banner("1. MIR as built, with parameter specialization (Figure 7a)")
    graph = build_mir(map_code, feedback=map_code.feedback, param_values=arguments)
    print(format_graph(graph))

    banner("2. After inlining inc (Figure 8c) - no guards needed")
    inlined = run_inlining(graph)
    print("inlined %d call(s)" % inlined)
    print(format_graph(graph))

    banner("3. After baseline type specialization (typed arithmetic)")
    specialize_types(graph)
    print(format_graph(graph))

    banner("4. After GVN + constant propagation (Figure 7b)")
    merged = run_gvn(graph)
    folded = run_constant_propagation(graph)
    print("gvn merged %d, constprop folded %d instruction(s)" % (merged, folded))
    print(format_graph(graph))

    banner("5. After dead-code elimination (Figure 8a)")
    branches, blocks, instructions = run_dce(graph)
    print(
        "folded %d branch(es), removed %d block(s), %d instruction(s)"
        % (branches, blocks, instructions)
    )
    print(format_graph(graph))

    banner("6. After bounds-check elimination (Figure 8b)")
    removed = run_bounds_check_elimination(graph)
    print("removed %d bounds check(s)" % removed)
    print(format_graph(graph))

    banner("7. Final native code")
    native, stats = generate_native(graph)
    print(native.disassemble())
    print(
        "\n%d native instructions, %d LIR, %d live intervals, %d spills"
        % (native.size, stats["lir_instructions"], stats["intervals"], stats["spills"])
    )


if __name__ == "__main__":
    main()
