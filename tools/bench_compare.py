#!/usr/bin/env python
"""Bench regression sentinel: what moved between two bench runs.

Where ``tools/perf_gate.py`` answers pass/fail, this tool produces the
full per-suite per-metric delta report (``repro.bench.compare``):
every measurement of the wall-clock protocol diffed against a baseline
``BENCH_wallclock.json``, classified by kind (host time, speedup
ratio, deterministic cycles, exact counters) and judged against
per-kind thresholds.  Deterministic model cycles compare with zero
tolerance — a planted 10% cycle regression is flagged while two runs
of the same tree compare clean.

Usage::

    # measure now, diff against the checked-in baseline
    PYTHONPATH=src python tools/bench_compare.py --baseline BENCH_wallclock.json

    # diff two stored result files (no measurement)
    PYTHONPATH=src python tools/bench_compare.py --baseline OLD.json --input NEW.json

    # CI: deterministic sections only, machine-readable artifact, never fail
    PYTHONPATH=src python tools/bench_compare.py --sections background \\
        --json-out bench-delta.json --report-only

Exit status: 1 when any metric regressed (unless ``--report-only``),
2 on usage errors, 0 otherwise.
"""

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_wallclock.json")


def parse_thresholds(pairs):
    """``kind=fraction`` strings -> {kind: float}; raises ValueError."""
    from repro.bench.compare import THRESHOLDS

    thresholds = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise ValueError("expected kind=fraction, got %r" % pair)
        kind, _, value = pair.partition("=")
        kind = kind.strip()
        if kind not in THRESHOLDS:
            raise ValueError(
                "unknown threshold kind %r; available: %s"
                % (kind, ", ".join(sorted(THRESHOLDS)))
            )
        thresholds[kind] = float(value)
    return thresholds


def main(argv=None):
    """Run the sentinel; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, help="baseline results JSON"
    )
    parser.add_argument(
        "--input",
        default=None,
        help="current results JSON (default: run the bench now)",
    )
    parser.add_argument(
        "--sections",
        default=None,
        help="comma-separated subset of backends,background,warm-cache "
        "(default: all)",
    )
    parser.add_argument(
        "--threshold",
        action="append",
        metavar="KIND=FRACTION",
        help="override a kind's tolerance, e.g. time=0.25 (repeatable)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N suite passes"
    )
    parser.add_argument(
        "--json-out", default=None, help="write the delta report JSON here"
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="always exit 0; regressions are reported, not fatal",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="show in-threshold rows too"
    )
    args = parser.parse_args(argv)

    from repro.bench.compare import compare_results, format_compare, write_compare_json
    from repro.bench.wallclock import ALL_SECTIONS, load_wallclock_json, run_wallclock

    sections = ALL_SECTIONS
    if args.sections:
        sections = tuple(
            part.strip() for part in args.sections.split(",") if part.strip()
        )
        unknown = [part for part in sections if part not in ALL_SECTIONS]
        if unknown:
            print(
                "unknown sections %s; available: %s"
                % (", ".join(unknown), ", ".join(ALL_SECTIONS))
            )
            return 2

    try:
        thresholds = parse_thresholds(args.threshold)
    except ValueError as error:
        print(str(error))
        return 2

    if not os.path.exists(args.baseline):
        print("no baseline at %s" % args.baseline)
        return 2
    baseline = load_wallclock_json(args.baseline)
    if args.input is not None:
        current = load_wallclock_json(args.input)
    else:
        current = run_wallclock(repeats=args.repeats, sections=sections)

    report = compare_results(
        current, baseline, thresholds=thresholds, sections=sections
    )
    print(format_compare(report, verbose=args.verbose))
    if args.json_out:
        write_compare_json(report, args.json_out)
        print("delta report written: %s" % args.json_out)
    if report["regressions"] and not args.report_only:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
