#!/usr/bin/env python
"""CI check: the persistent code cache round-trips bit-identically.

Runs the deterministic web workload twice in *separate interpreter
processes* sharing one cache directory:

1. **cold** — cleared directory; every compile misses and stores;
2. **warm** — same directory; compiles load from disk (``disk hits``
   must be > 0).

The check passes only when both phases print the same guest output and
the same ``EngineStats.as_dict()`` ledger — byte for byte once
JSON-encoded, modulo the host-side disk-traffic counters
(``DISK_TRAFFIC_KEYS``: the cold run stores, the warm run hits, by
design) — proving the disk cache is a pure host-time optimization
(docs/COMPILE_PIPELINE.md).  Separate processes make the comparison
honest: nothing in-memory can leak between phases, and per-process
counters (code ids) start from the same state.

Usage::

    PYTHONPATH=src python tools/cache_roundtrip.py [--dir DIR] [--backend closure]

Exit status 1 on any mismatch, 0 otherwise.  ``--phase`` is internal
(the subprocess entry point).
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def run_phase(cache_dir, backend):
    """One measured pass: run the workload through the cache at ``cache_dir``.

    Prints a JSON payload with the guest output, the full stats ledger
    and the cache counters; consumed by :func:`main` in check mode.
    """
    from repro.bench.wallclock import _web_programs
    from repro.cache import DiskCodeCache
    from repro.engine.runtime_engine import Engine

    cache = DiskCodeCache(root=cache_dir)
    output = []
    stats = []
    for source in _web_programs():
        engine = Engine(executor_backend=backend, code_cache=cache)
        output.extend(engine.run_source(source))
        stats.append(engine.stats.as_dict())
    print(json.dumps({"output": output, "stats": stats, "cache": cache.stats()}))
    return 0


def _spawn(phase, cache_dir, backend):
    """Run one phase in a fresh interpreter; returns its parsed payload."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--phase",
            phase,
            "--dir",
            cache_dir,
            "--backend",
            backend,
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise SystemExit(
            "%s phase failed (exit %d):\n%s" % (phase, proc.returncode, proc.stderr)
        )
    return json.loads(proc.stdout)


def main(argv=None):
    """Run the round trip; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR, else a temp dir)",
    )
    parser.add_argument(
        "--backend", default="closure", choices=["simple", "closure", "whole"]
    )
    parser.add_argument(
        "--phase", default=None, choices=["cold", "warm"], help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    if args.phase is not None:
        return run_phase(args.dir, args.backend)

    cache_dir = args.dir or os.environ.get("REPRO_CACHE_DIR")
    cleanup = False
    if not cache_dir:
        cache_dir = tempfile.mkdtemp(prefix="repro-roundtrip-")
        cleanup = True
    try:
        shutil.rmtree(os.path.join(cache_dir, "code"), ignore_errors=True)
        cold = _spawn("cold", cache_dir, args.backend)
        warm = _spawn("warm", cache_dir, args.backend)

        failures = []
        if cold["cache"]["stores"] == 0:
            failures.append("cold phase stored nothing")
        if warm["cache"]["hits"] == 0:
            failures.append("warm phase had no disk hits")
        if warm["cache"]["stores"] != 0:
            failures.append(
                "warm phase re-stored %d artifact(s)" % warm["cache"]["stores"]
            )
        if cold["output"] != warm["output"]:
            failures.append("guest output differs between cold and warm")
        from repro.engine.stats import DISK_TRAFFIC_KEYS

        for index, (cold_stats, warm_stats) in enumerate(
            zip(cold["stats"], warm["stats"])
        ):
            for key in cold_stats:
                if key in DISK_TRAFFIC_KEYS:
                    continue  # host-side cache accounting differs by design
                if cold_stats[key] != warm_stats[key]:
                    failures.append(
                        "program %d: stats[%r] %r (cold) != %r (warm)"
                        % (index, key, cold_stats[key], warm_stats[key])
                    )
        if failures:
            print("CACHE ROUND TRIP FAILED:")
            for failure in failures:
                print("  " + failure)
            return 1
        print(
            "cache round trip OK: %d stores cold, %d hits warm, "
            "output and stats bit-identical (%s backend, dir %s)"
            % (
                cold["cache"]["stores"],
                warm["cache"]["hits"],
                args.backend,
                cache_dir,
            )
        )
        return 0
    finally:
        if cleanup:
            shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
