#!/usr/bin/env python
"""CI smoke check: the serving tier survives real multi-tenant traffic.

Starts ``python -m repro serve`` as a subprocess (unix socket, two
engine worker processes, shared sharded cache, preloaded catalog),
drives a fixed request mix over the JSON-line protocol — 200 ``run``
requests spread across 8 tenants by default — then asserts the
contract the serving tier documents (docs/SERVING.md):

- every request gets a reply with a sane status (``ok``/``rejected``),
  and every ``ok`` reply echoes its client ``id``;
- the ``stats`` op reports **zero isolation violations**;
- ``shutdown`` drains gracefully: the server exits 0 and writes the
  merged metrics payload as JSONL (uploaded as a CI artifact), whose
  request counter matches what we actually sent.

Deterministic on purpose: tenants and programs are picked round-robin
(no randomness), so two runs issue byte-identical traffic.

Usage::

    PYTHONPATH=src python tools/serving_smoke.py \
        [--requests 200] [--tenants 8] [--metrics-out PATH]

Exit status 1 on any contract violation, 0 otherwise.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

CATALOG_PROGRAMS = 4
CATALOG_FUNCTIONS = 3
START_TIMEOUT = 30.0
SHUTDOWN_TIMEOUT = 60.0


class LineClient(object):
    """Blocking JSON-line client over a unix socket."""

    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def request(self, payload):
        self.sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        line = self.reader.readline()
        if not line:
            raise SystemExit("server closed the connection mid-request")
        return json.loads(line)

    def close(self):
        try:
            self.reader.close()
        finally:
            self.sock.close()


def wait_for_socket(path, proc, timeout=START_TIMEOUT):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "server exited before binding (exit %d)" % proc.returncode
            )
        if os.path.exists(path):
            return
        time.sleep(0.05)
    raise SystemExit("server did not bind %s within %ds" % (path, timeout))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="merged metrics JSONL path (default: <tempdir>/metrics.jsonl)",
    )
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="repro-serving-smoke-")
    socket_path = os.path.join(workdir, "serve.sock")
    metrics_path = args.metrics_out or os.path.join(workdir, "metrics.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            str(args.workers),
            "--cache",
            "shared",
            "--cache-dir",
            os.path.join(workdir, "cache"),
            "--catalog-programs",
            str(CATALOG_PROGRAMS),
            "--catalog-functions",
            str(CATALOG_FUNCTIONS),
            "--metrics-out",
            metrics_path,
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    failures = []
    served = 0
    rejected = 0
    try:
        wait_for_socket(socket_path, proc)
        client = LineClient(socket_path)
        ping = client.request({"op": "ping"})
        if ping.get("status") != "ok":
            failures.append("ping failed: %r" % (ping,))

        for index in range(args.requests):
            tenant = "t%02d" % (index % args.tenants)
            program = "app-%02d" % (index % CATALOG_PROGRAMS)
            reply = client.request(
                {
                    "op": "run",
                    "tenant": tenant,
                    "program": program,
                    "id": "req-%04d" % index,
                }
            )
            status = reply.get("status")
            if status == "ok":
                served += 1
                if reply.get("id") != "req-%04d" % index:
                    failures.append("request %d: id not echoed: %r" % (index, reply))
            elif status == "rejected":
                rejected += 1
            else:
                failures.append("request %d: bad reply %r" % (index, reply))

        stats = client.request({"op": "stats"})
        if stats.get("status") != "ok":
            failures.append("stats op failed: %r" % (stats,))
        if stats.get("isolation_violations") != 0:
            failures.append(
                "isolation violations: %r" % (stats.get("isolation_violations"),)
            )
        if stats.get("requests") != served:
            failures.append(
                "stats served %r != client-observed %d" % (stats.get("requests"), served)
            )
        if stats.get("tenants") != min(args.tenants, served or args.tenants):
            failures.append(
                "stats tenants %r != expected %d" % (stats.get("tenants"), args.tenants)
            )
        if served == 0:
            failures.append("no request was served")

        down = client.request({"op": "shutdown"})
        if down.get("status") != "ok":
            failures.append("shutdown op failed: %r" % (down,))
        client.close()
        try:
            proc.wait(timeout=SHUTDOWN_TIMEOUT)
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("server did not exit within %ds" % SHUTDOWN_TIMEOUT)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    output = proc.stdout.read() if proc.stdout else ""
    if proc.returncode != 0:
        failures.append(
            "server exit code %r; output:\n%s" % (proc.returncode, output)
        )

    if not os.path.exists(metrics_path):
        failures.append("metrics JSONL missing: %s" % metrics_path)
    else:
        with open(metrics_path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        if not lines:
            failures.append("metrics JSONL is empty")
        else:
            total = lines[0].get("counters", {}).get("repro_serving_requests_total")
            if total != served:
                failures.append(
                    "metrics requests_total %r != served %d" % (total, served)
                )
            violations = (
                lines[0].get("counters", {}).get("repro_serving_isolation_violations_total", 0)
            )
            if violations != 0:
                failures.append("metrics isolation violations: %r" % (violations,))

    if failures:
        print("SERVING SMOKE FAILED:")
        for failure in failures:
            print("  " + failure)
        print("server output:\n" + output)
        return 1
    print(
        "serving smoke OK: %d served, %d rejected over %d tenants; "
        "0 isolation violations; clean exit; metrics at %s"
        % (served, rejected, args.tenants, metrics_path)
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
