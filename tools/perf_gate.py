#!/usr/bin/env python
"""Performance gate: fail when the closure backend's speedup regresses.

Runs the wall-clock protocol of :mod:`repro.bench.wallclock` and
compares the per-suite (and geometric-mean) speedup ratios against the
checked-in baseline ``BENCH_wallclock.json``.  Ratios — not seconds —
are compared, so the gate is meaningful on any machine; a failure
means the closure backend's advantage over the reference executor
shrank by more than the tolerance (default 15%).

Besides the backend comparison, the gate covers the background
compilation lane (deterministic cycle ratios, near-exact comparison)
and the persistent code cache (cold vs warm wall clock); ``--sections``
selects a subset — e.g. ``--sections warm-cache`` lets CI gate the
warm-cache speedup against a stored ``--baseline`` JSON without paying
for the full backend sweep.

Usage::

    PYTHONPATH=src python tools/perf_gate.py             # gate against baseline
    PYTHONPATH=src python tools/perf_gate.py --update    # refresh the baseline
    PYTHONPATH=src python tools/perf_gate.py --sections warm-cache --baseline B.json
    PYTHONPATH=src python -m pytest -m perf              # same gate via pytest

Exit status 1 on regression (or missing baseline), 0 otherwise.
"""

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_wallclock.json")


def main(argv=None):
    """Run the gate; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, help="baseline JSON path"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional speedup drop vs baseline (default 0.15)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N suite passes"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the fresh measurement to --baseline instead of gating",
    )
    parser.add_argument(
        "--sections",
        default=None,
        help="comma-separated subset of backends,background,warm-cache "
        "(default: all)",
    )
    parser.add_argument(
        "--from-compare",
        default=None,
        metavar="DELTA_JSON",
        help="gate on a stored bench_compare.py delta report instead of "
        "measuring: exit 1 if it recorded any regression",
    )
    args = parser.parse_args(argv)

    if args.from_compare is not None:
        from repro.bench.compare import format_compare, load_compare_json

        report = load_compare_json(args.from_compare)
        print(format_compare(report))
        if report.get("regressions"):
            print("PERF GATE FAILED (%d regressions in %s)"
                  % (report["regressions"], args.from_compare))
            return 1
        print("perf gate passed (delta report %s)" % args.from_compare)
        return 0

    from repro.bench.wallclock import (
        ALL_SECTIONS,
        check_gate,
        format_wallclock,
        load_wallclock_json,
        run_wallclock,
        write_wallclock_json,
    )

    sections = ALL_SECTIONS
    if args.sections:
        sections = tuple(part.strip() for part in args.sections.split(",") if part.strip())
        unknown = [part for part in sections if part not in ALL_SECTIONS]
        if unknown:
            print(
                "unknown sections %s; available: %s"
                % (", ".join(unknown), ", ".join(ALL_SECTIONS))
            )
            return 2

    results = run_wallclock(repeats=args.repeats, sections=sections)
    print(format_wallclock(results))

    if args.update:
        write_wallclock_json(results, args.baseline)
        print("baseline updated: %s" % args.baseline)
        return 0

    if not os.path.exists(args.baseline):
        print("no baseline at %s (run with --update to create one)" % args.baseline)
        return 1
    failures = check_gate(results, load_wallclock_json(args.baseline), args.tolerance)
    if failures:
        print("PERF GATE FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("perf gate passed (tolerance %d%%)" % round(args.tolerance * 100))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
